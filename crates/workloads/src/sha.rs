//! `sha` — FNV-1a digest over a byte buffer (stands in for MiBench `sha`:
//! a sequential, multiply-heavy digest with a tiny output).

use crate::util::Lcg;
use crate::{Suite, Workload};
use avgi_isa::asm::Assembler;
use avgi_isa::reg::{A0, A1, S0, S1, T0, T1, T2, T3};
use avgi_muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_muarch::program::Program;

const BYTES: usize = 2048;
const FNV_OFFSET: u32 = 2_166_136_261;
const FNV_PRIME: u32 = 16_777_619;

fn reference(data: &[u8]) -> u32 {
    let mut h = FNV_OFFSET;
    for &b in data {
        h ^= u32::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Builds the workload.
pub fn build() -> Workload {
    let mut lcg = Lcg::new(0x5AA5_0001);
    let data = lcg.bytes(BYTES);
    let digest = reference(&data);

    let mut a = Assembler::new(0);
    a.li32(A0, DATA_BASE);
    a.li32(T0, 0);
    a.li32(T1, BYTES as u32);
    a.li32(S0, FNV_OFFSET);
    a.li32(S1, FNV_PRIME);
    a.label("loop");
    a.add(T2, A0, T0);
    a.lbu(T3, T2, 0);
    a.xor(S0, S0, T3);
    a.mul(S0, S0, S1);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "loop");
    a.li32(A1, OUTPUT_BASE);
    a.sw(A1, S0, 0);
    a.halt();

    let program =
        Program::new("sha", a.assemble().expect("sha assembles"), 4).with_data(DATA_BASE, data);
    Workload {
        name: "sha",
        suite: Suite::MiBench,
        program,
        expected: digest.to_le_bytes().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_known_fnv_vector() {
        // FNV-1a of "a" is 0xE40C292C.
        assert_eq!(reference(b"a"), 0xE40C_292C);
    }

    #[test]
    fn digest_depends_on_every_byte() {
        let mut lcg = Lcg::new(1);
        let data = lcg.bytes(64);
        let d0 = reference(&data);
        let mut flipped = data.clone();
        flipped[0] ^= 1;
        assert_ne!(reference(&flipped), d0);
        let mut flipped = data;
        flipped[63] ^= 0x80;
        assert_ne!(reference(&flipped), d0);
    }
}
