//! `fft` — staged fixed-point butterfly transform (MiBench `FFT` stand-in):
//! strided pair accesses, multiply + shift arithmetic, medium output.

use crate::util::{words_to_bytes, Lcg};
use crate::{Suite, Workload};
use avgi_isa::asm::Assembler;
use avgi_isa::reg::{A0, A1, A2, S0, S1, S2, T0, T1, T2, T3, T4, T5, T6};
use avgi_muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_muarch::program::Program;

const N: usize = 256;
const STAGES: usize = 8;
const HALF: usize = N / 2;
const TW_ADDR: u32 = DATA_BASE + 0x400;
/// Fixed-point (Q8) twiddle factors, one per stage.
const TWIDDLES: [u32; STAGES] = [256, 237, 181, 98, 30, 301, 412, 144];

fn reference(input: &[u32]) -> Vec<u32> {
    let mut x = input.to_vec();
    for &w in TWIDDLES.iter().take(STAGES) {
        for i in 0..HALF {
            let a = x[i];
            let b = x[i + HALF];
            x[i] = a.wrapping_add(b);
            x[i + HALF] = a.wrapping_sub(b).wrapping_mul(w) >> 8;
        }
    }
    x
}

/// Builds the workload.
pub fn build() -> Workload {
    let mut lcg = Lcg::new(0xFF70_1234);
    let input = lcg.words(N);
    let output = reference(&input);

    let mut a = Assembler::new(0);
    a.li32(A0, DATA_BASE);
    a.li32(A1, TW_ADDR);
    a.li32(S0, 0); // stage
    a.li32(S2, STAGES as u32);
    a.label("sloop");
    a.slli(T2, S0, 2);
    a.add(T2, A1, T2);
    a.lw(S1, T2, 0); // w
    a.li32(T0, 0);
    a.li32(T1, HALF as u32);
    a.label("iloop");
    a.slli(T2, T0, 2);
    a.add(T3, A0, T2);
    a.lw(T4, T3, 0); // a
    a.lw(T5, T3, (HALF * 4) as i32); // b
    a.add(T6, T4, T5);
    a.sw(T3, T6, 0);
    a.sub(T6, T4, T5);
    a.mul(T6, T6, S1);
    a.srli(T6, T6, 8);
    a.sw(T3, T6, (HALF * 4) as i32);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "iloop");
    a.addi(S0, S0, 1);
    a.bne(S0, S2, "sloop");
    // Emit the transformed array.
    a.li32(A2, OUTPUT_BASE);
    a.li32(T0, 0);
    a.li32(T1, N as u32);
    a.label("copy");
    a.slli(T2, T0, 2);
    a.add(T3, A0, T2);
    a.lw(T4, T3, 0);
    a.add(T5, A2, T2);
    a.sw(T5, T4, 0);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "copy");
    a.halt();

    let program = Program::new("fft", a.assemble().expect("fft assembles"), (N * 4) as u32)
        .with_data(DATA_BASE, words_to_bytes(&input))
        .with_data(TW_ADDR, words_to_bytes(&TWIDDLES));
    Workload {
        name: "fft",
        suite: Suite::MiBench,
        program,
        expected: words_to_bytes(&output),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_changes_every_half() {
        let mut lcg = Lcg::new(2);
        let input = lcg.words(N);
        let out = reference(&input);
        assert_ne!(out[..HALF], input[..HALF]);
        assert_ne!(out[HALF..], input[HALF..]);
    }

    #[test]
    fn unit_twiddle_stage_is_sum_difference() {
        // With w = 256 (1.0 in Q8), a single stage maps (a, b) to
        // (a+b, a-b).
        let x = vec![10u32, 4];
        let mut v = x.clone();
        let a0 = v[0];
        let b0 = v[1];
        v[0] = a0.wrapping_add(b0);
        v[1] = a0.wrapping_sub(b0).wrapping_mul(256) >> 8;
        assert_eq!(v, vec![14, 6]);
    }
}
