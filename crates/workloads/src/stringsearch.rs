//! `stringsearch` — naive multi-pattern substring search (MiBench
//! `stringsearch`): byte loads, short-circuit comparisons, small output of
//! match positions.

use crate::util::{words_to_bytes, Lcg};
use crate::{Suite, Workload};
use avgi_isa::asm::Assembler;
use avgi_isa::reg::{A0, A1, A2, S0, S2, S3, S4, T0, T1, T2, T3, T4, T5};
use avgi_muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_muarch::program::Program;

const TEXT_LEN: usize = 1024;
const PATTERNS: usize = 8;
const PAT_LEN: usize = 4;
const PATTERNS_ADDR: u32 = DATA_BASE + 0x1000;

fn reference(text: &[u8], patterns: &[[u8; PAT_LEN]]) -> Vec<u32> {
    patterns
        .iter()
        .map(|p| {
            (0..=text.len() - PAT_LEN)
                .find(|&i| &text[i..i + PAT_LEN] == p)
                .map_or(u32::MAX, |i| i as u32)
        })
        .collect()
}

/// Builds the workload.
pub fn build() -> Workload {
    let mut lcg = Lcg::new(0x57A1_0099);
    let text: Vec<u8> = (0..TEXT_LEN).map(|_| b'a' + lcg.next_u8() % 26).collect();
    // Six patterns sampled from the text (guaranteed hits), two random
    // (usually misses).
    let mut patterns: Vec<[u8; PAT_LEN]> = Vec::new();
    for k in 0..6 {
        let at = (lcg.next_u32() as usize) % (TEXT_LEN - PAT_LEN);
        let _ = k;
        patterns.push(text[at..at + PAT_LEN].try_into().unwrap());
    }
    for _ in 0..2 {
        patterns.push([b'A' + lcg.next_u8() % 26, b'0', b'Z', b'9']);
    }
    let positions = reference(&text, &patterns);

    let mut a = Assembler::new(0);
    a.li32(A0, DATA_BASE); // text
    a.li32(A1, PATTERNS_ADDR);
    a.li32(A2, OUTPUT_BASE);
    a.li32(S2, 0); // pattern index
    a.li32(S3, PATTERNS as u32);
    a.label("ploop");
    a.slli(T0, S2, 2);
    a.add(S4, A1, T0); // pattern base
    a.addi(S0, avgi_isa::reg::ZERO, -1); // result = u32::MAX
    a.li32(T1, 0); // pos
    a.li32(T2, (TEXT_LEN - PAT_LEN + 1) as u32);
    a.label("sloop");
    a.add(T3, A0, T1);
    for k in 0..PAT_LEN as i32 {
        a.lbu(T4, T3, k);
        a.lbu(T5, S4, k);
        a.bne(T4, T5, "snext");
    }
    a.mv(S0, T1);
    a.j("found");
    a.label("snext");
    a.addi(T1, T1, 1);
    a.bne(T1, T2, "sloop");
    a.label("found");
    a.slli(T0, S2, 2);
    a.add(T0, A2, T0);
    a.sw(T0, S0, 0);
    a.addi(S2, S2, 1);
    a.bne(S2, S3, "ploop");
    a.halt();

    let pat_bytes: Vec<u8> = patterns.iter().flatten().copied().collect();
    let program = Program::new(
        "stringsearch",
        a.assemble().expect("stringsearch assembles"),
        (PATTERNS * 4) as u32,
    )
    .with_data(DATA_BASE, text)
    .with_data(PATTERNS_ADDR, pat_bytes);
    Workload {
        name: "stringsearch",
        suite: Suite::MiBench,
        program,
        expected: words_to_bytes(&positions),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_patterns_hit_and_synthetic_miss() {
        let w = build();
        let words: Vec<u32> = w
            .expected
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(words.len(), PATTERNS);
        assert!(
            words[..6].iter().all(|&p| p != u32::MAX),
            "sampled patterns must match"
        );
        assert!(
            words[6..].iter().all(|&p| p == u32::MAX),
            "digit patterns cannot occur"
        );
    }
}
