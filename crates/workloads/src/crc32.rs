//! `crc32` — bitwise CRC-32 (MiBench `CRC32`): long serial dependence chain
//! with data-independent control flow and a 4-byte output.

use crate::util::Lcg;
use crate::{Suite, Workload};
use avgi_isa::asm::Assembler;
use avgi_isa::reg::{A0, A1, S0, S1, T0, T1, T2, T3, T4, T5, ZERO};
use avgi_muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_muarch::program::Program;

const BYTES: usize = 512;
const POLY: u32 = 0xEDB8_8320;

fn reference(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// Builds the workload.
pub fn build() -> Workload {
    let mut lcg = Lcg::new(0xC2C3_2001);
    let data = lcg.bytes(BYTES);
    let crc = reference(&data);

    let mut a = Assembler::new(0);
    a.li32(A0, DATA_BASE);
    a.li32(T0, 0);
    a.li32(T1, BYTES as u32);
    a.li32(S0, u32::MAX); // crc
    a.li32(S1, POLY);
    a.label("byteloop");
    a.add(T2, A0, T0);
    a.lbu(T3, T2, 0);
    a.xor(S0, S0, T3);
    a.addi(T4, ZERO, 8);
    a.label("bitloop");
    a.andi(T5, S0, 1);
    a.sub(T5, ZERO, T5); // mask = -(crc & 1)
    a.and(T5, T5, S1);
    a.srli(S0, S0, 1);
    a.xor(S0, S0, T5);
    a.addi(T4, T4, -1);
    a.bne(T4, ZERO, "bitloop");
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "byteloop");
    a.xori(S0, S0, -1); // final complement
    a.li32(A1, OUTPUT_BASE);
    a.sw(A1, S0, 0);
    a.halt();

    let program =
        Program::new("crc32", a.assemble().expect("crc32 assembles"), 4).with_data(DATA_BASE, data);
    Workload {
        name: "crc32",
        suite: Suite::MiBench,
        program,
        expected: crc.to_le_bytes().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_known_vector() {
        // CRC-32 of "123456789" is 0xCBF43926.
        assert_eq!(reference(b"123456789"), 0xCBF4_3926);
    }
}
