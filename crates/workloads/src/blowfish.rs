//! `blowfish` — ARX stream cipher over a large buffer (stands in for
//! MiBench `blowfish`): streaming memory traffic and a *large* output,
//! the key property for the paper's ESC analysis (§IV.D).

use crate::util::{words_to_bytes, Lcg};
use crate::{Suite, Workload};
use avgi_isa::asm::Assembler;
use avgi_isa::reg::{A0, A1, S0, S1, S2, T0, T1, T2, T3, T4};
use avgi_muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_muarch::program::Program;

const WORDS: usize = 3072; // 12 KiB
const STATE0: u32 = 0x1234_5678;
const K0: u32 = 0x9E37_79B9;
const K1: u32 = 0x7F4A_7C15;

fn reference(input: &[u32]) -> Vec<u32> {
    let mut s = STATE0;
    input
        .iter()
        .map(|&w| {
            s = (s ^ K0).rotate_left(7).wrapping_add(K1);
            w ^ s
        })
        .collect()
}

/// Builds the workload.
pub fn build() -> Workload {
    let mut lcg = Lcg::new(0xB70F_1511);
    let input = lcg.words(WORDS);
    let output = reference(&input);

    let mut a = Assembler::new(0);
    a.li32(A0, DATA_BASE);
    a.li32(A1, OUTPUT_BASE);
    a.li32(T0, 0);
    a.li32(T1, WORDS as u32);
    a.li32(S0, STATE0);
    a.li32(S1, K0);
    a.li32(S2, K1);
    a.label("loop");
    a.xor(S0, S0, S1);
    a.slli(T2, S0, 7); // rotate_left(7)
    a.srli(T3, S0, 25);
    a.or(S0, T2, T3);
    a.add(S0, S0, S2);
    a.slli(T2, T0, 2);
    a.add(T3, A0, T2);
    a.lw(T4, T3, 0);
    a.xor(T4, T4, S0);
    a.add(T3, A1, T2);
    a.sw(T3, T4, 0);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "loop");
    a.halt();

    let program = Program::new(
        "blowfish",
        a.assemble().expect("blowfish assembles"),
        (WORDS * 4) as u32,
    )
    .with_data(DATA_BASE, words_to_bytes(&input));
    Workload {
        name: "blowfish",
        suite: Suite::MiBench,
        program,
        expected: words_to_bytes(&output),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cipher_is_involutive_under_xor_stream() {
        // Re-encrypting the ciphertext with the same keystream recovers the
        // plaintext (XOR stream property).
        let mut lcg = Lcg::new(9);
        let input = lcg.words(32);
        let once = reference(&input);
        let twice = reference(&once);
        assert_eq!(twice, input);
    }

    #[test]
    fn large_output() {
        assert_eq!(build().output_bytes(), 12 * 1024);
    }
}
