//! `nas_cg` — repeated matrix-vector products with renormalization, the
//! NAS CG kernel's inner loop shape: dense dot products, long multiply
//! chains, small output.

use crate::util::{words_to_bytes, Lcg};
use crate::{Suite, Workload};
use avgi_isa::asm::Assembler;
use avgi_isa::reg::{A0, A1, A2, A3, S0, S1, S2, T0, T1, T2, T3, T4, T5, T6};
use avgi_muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_muarch::program::Program;

const N: usize = 24;
const ITERS: usize = 8;
const X_ADDR: u32 = DATA_BASE + 0x1000;
const Y_ADDR: u32 = DATA_BASE + 0x1100;

fn reference(mat: &[u32], x0: &[u32]) -> Vec<u32> {
    let mut x = x0.to_vec();
    let mut y = [0u32; N];
    for _ in 0..ITERS {
        for i in 0..N {
            let mut acc = 0u32;
            for j in 0..N {
                acc = acc.wrapping_add(mat[i * N + j].wrapping_mul(x[j]));
            }
            y[i] = acc;
        }
        for i in 0..N {
            x[i] = y[i] >> 8;
        }
    }
    x
}

/// Builds the workload.
pub fn build() -> Workload {
    let mut lcg = Lcg::new(0xC6C6_0019);
    let mat = lcg.words(N * N);
    let x0 = lcg.words(N);
    let x_final = reference(&mat, &x0);

    let mut a = Assembler::new(0);
    a.li32(A0, DATA_BASE); // matrix
    a.li32(A1, X_ADDR);
    a.li32(A2, Y_ADDR);
    a.li32(S0, 0); // iteration
    a.li32(S2, ITERS as u32);
    a.label("oloop");
    a.li32(T0, 0); // row i
    a.li32(T1, N as u32);
    a.label("rowloop");
    a.li32(S1, 0); // acc
    a.li32(T6, (N * 4) as u32);
    a.mul(T6, T0, T6);
    a.add(T6, A0, T6); // row base
    a.li32(T2, 0); // column j
    a.label("jloop");
    a.slli(T3, T2, 2);
    a.add(T4, T6, T3);
    a.lw(T4, T4, 0);
    a.add(T5, A1, T3);
    a.lw(T5, T5, 0);
    a.mul(T4, T4, T5);
    a.add(S1, S1, T4);
    a.addi(T2, T2, 1);
    a.bne(T2, T1, "jloop");
    a.slli(T3, T0, 2);
    a.add(T4, A2, T3);
    a.sw(T4, S1, 0);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "rowloop");
    // Renormalize: x = y >> 8.
    a.li32(T0, 0);
    a.label("xloop");
    a.slli(T3, T0, 2);
    a.add(T4, A2, T3);
    a.lw(T5, T4, 0);
    a.srli(T5, T5, 8);
    a.add(T4, A1, T3);
    a.sw(T4, T5, 0);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "xloop");
    a.addi(S0, S0, 1);
    a.bne(S0, S2, "oloop");
    // Emit the final vector.
    a.li32(A3, OUTPUT_BASE);
    a.li32(T0, 0);
    a.label("copy");
    a.slli(T3, T0, 2);
    a.add(T4, A1, T3);
    a.lw(T5, T4, 0);
    a.add(T4, A3, T3);
    a.sw(T4, T5, 0);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "copy");
    a.halt();

    let program = Program::new(
        "nas_cg",
        a.assemble().expect("nas_cg assembles"),
        (N * 4) as u32,
    )
    .with_data(DATA_BASE, words_to_bytes(&mat))
    .with_data(X_ADDR, words_to_bytes(&x0));
    Workload {
        name: "nas_cg",
        suite: Suite::Nas,
        program,
        expected: words_to_bytes(&x_final),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_matrix_fixes_zero() {
        let mat = vec![0u32; N * N];
        let x0 = vec![123u32; N];
        assert_eq!(reference(&mat, &x0), vec![0u32; N]);
    }

    #[test]
    fn result_depends_on_matrix() {
        let mut lcg = Lcg::new(4);
        let m1 = lcg.words(N * N);
        let mut m2 = m1.clone();
        m2[0] ^= 1;
        let x0 = lcg.words(N);
        assert_ne!(reference(&m1, &x0), reference(&m2, &x0));
    }
}
