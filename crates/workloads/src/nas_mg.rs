//! `nas_mg` — repeated 3-point relaxation sweeps over a grid, the NAS MG
//! kernel's smoother: in-place stencil with read-after-write dependences
//! and a sizeable output.

use crate::util::{words_to_bytes, Lcg};
use crate::{Suite, Workload};
use avgi_isa::asm::Assembler;
use avgi_isa::reg::{A0, A1, S0, S1, T0, T1, T2, T3, T4, T5};
use avgi_muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_muarch::program::Program;

const N: usize = 512;
const SWEEPS: usize = 8;

fn reference(input: &[u32]) -> Vec<u32> {
    let mut a = input.to_vec();
    for _ in 0..SWEEPS {
        // Gauss-Seidel order: the updated left neighbour feeds the next
        // point, exactly as the in-place assembly loop does.
        for i in 1..N - 1 {
            a[i] = a[i - 1].wrapping_add(a[i] << 1).wrapping_add(a[i + 1]) >> 2;
        }
    }
    a
}

/// Builds the workload.
pub fn build() -> Workload {
    let mut lcg = Lcg::new(0x3613_0005);
    let input = lcg.words(N);
    let output = reference(&input);

    let mut a = Assembler::new(0);
    a.li32(A0, DATA_BASE);
    a.li32(S0, 0); // sweep
    a.li32(S1, SWEEPS as u32);
    a.label("sweep");
    a.li32(T0, 1);
    a.li32(T1, (N - 1) as u32);
    a.label("iloop");
    a.slli(T2, T0, 2);
    a.add(T2, A0, T2);
    a.lw(T3, T2, -4);
    a.lw(T4, T2, 0);
    a.lw(T5, T2, 4);
    a.slli(T4, T4, 1);
    a.add(T3, T3, T4);
    a.add(T3, T3, T5);
    a.srli(T3, T3, 2);
    a.sw(T2, T3, 0);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "iloop");
    a.addi(S0, S0, 1);
    a.bne(S0, S1, "sweep");
    // Emit the relaxed grid.
    a.li32(A1, OUTPUT_BASE);
    a.li32(T0, 0);
    a.li32(T1, N as u32);
    a.label("copy");
    a.slli(T2, T0, 2);
    a.add(T3, A0, T2);
    a.lw(T4, T3, 0);
    a.add(T5, A1, T2);
    a.sw(T5, T4, 0);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "copy");
    a.halt();

    let program = Program::new(
        "nas_mg",
        a.assemble().expect("nas_mg assembles"),
        (N * 4) as u32,
    )
    .with_data(DATA_BASE, words_to_bytes(&input));
    Workload {
        name: "nas_mg",
        suite: Suite::Nas,
        program,
        expected: words_to_bytes(&output),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxation_smooths_towards_neighbours() {
        // A spike between zeros spreads out after a sweep.
        let mut grid = vec![0u32; N];
        grid[10] = 4096;
        let out = reference(&grid);
        assert!(out[10] < 4096);
        assert!(out[11] > 0);
    }

    #[test]
    fn boundaries_are_fixed() {
        let w = build();
        let first = u32::from_le_bytes(w.expected[..4].try_into().unwrap());
        let mut lcg = Lcg::new(0x3613_0005);
        let input = lcg.words(N);
        assert_eq!(first, input[0], "boundary cells never relax");
    }
}
