//! `susan` — 3×3 neighbourhood smoothing over a byte image (MiBench
//! `susan`): 2-D spatial locality, byte loads/stores, medium output.

use crate::util::Lcg;
use crate::{Suite, Workload};
use avgi_isa::asm::Assembler;
use avgi_isa::reg::{A0, A1, S0, S1, S2, S3, S4, T1, T2, T3, T4, T5, T6, T7, ZERO};
use avgi_muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_muarch::program::Program;

const W: usize = 48;
const H: usize = 32;
/// 3×3 neighbourhood offsets in a row-major W-wide image.
const OFFSETS: [i32; 9] = [
    -(W as i32) - 1,
    -(W as i32),
    -(W as i32) + 1,
    -1,
    0,
    1,
    W as i32 - 1,
    W as i32,
    W as i32 + 1,
];

fn reference(img: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; W * H];
    for y in 0..H {
        for x in 0..W {
            let idx = y * W + x;
            if y == 0 || y == H - 1 || x == 0 || x == W - 1 {
                out[idx] = img[idx];
            } else {
                let sum: u32 = OFFSETS
                    .iter()
                    .map(|&o| u32::from(img[(idx as i32 + o) as usize]))
                    .sum();
                out[idx] = (sum >> 3) as u8;
            }
        }
    }
    out
}

/// Builds the workload.
pub fn build() -> Workload {
    let mut lcg = Lcg::new(0x5A5A_0031);
    let img = lcg.bytes(W * H);
    let out = reference(&img);

    let mut a = Assembler::new(0);
    a.li32(A0, DATA_BASE);
    a.li32(A1, OUTPUT_BASE);
    a.li32(T1, W as u32);
    a.li32(S2, (H - 1) as u32);
    a.li32(S3, (W - 1) as u32);
    a.li32(S4, H as u32);
    a.li32(S0, 0); // y
    a.label("yloop");
    a.li32(S1, 0); // x
    a.label("xloop");
    // offset = y*48 + x = (y<<5) + (y<<4) + x
    a.slli(T2, S0, 5);
    a.slli(T3, S0, 4);
    a.add(T2, T2, T3);
    a.add(T2, T2, S1);
    a.add(T4, A0, T2); // input pixel address
    a.add(T5, A1, T2); // output pixel address
    a.beq(S0, ZERO, "copy");
    a.beq(S0, S2, "copy");
    a.beq(S1, ZERO, "copy");
    a.beq(S1, S3, "copy");
    a.li32(T6, 0);
    for &off in &OFFSETS {
        a.lbu(T7, T4, off);
        a.add(T6, T6, T7);
    }
    a.srli(T6, T6, 3);
    a.sb(T5, T6, 0);
    a.j("next");
    a.label("copy");
    a.lbu(T7, T4, 0);
    a.sb(T5, T7, 0);
    a.label("next");
    a.addi(S1, S1, 1);
    a.bne(S1, T1, "xloop");
    a.addi(S0, S0, 1);
    a.bne(S0, S4, "yloop");
    a.halt();

    let program = Program::new(
        "susan",
        a.assemble().expect("susan assembles"),
        (W * H) as u32,
    )
    .with_data(DATA_BASE, img);
    Workload {
        name: "susan",
        suite: Suite::MiBench,
        program,
        expected: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoothing_preserves_borders_and_flattens_interior() {
        let img = vec![200u8; W * H];
        let out = reference(&img);
        assert_eq!(out[0], 200);
        // Uniform interior: (9 * 200) >> 3 = 225, truncated into u8.
        assert_eq!(out[W + 1], ((9u32 * 200) >> 3) as u8);
    }

    #[test]
    fn offsets_cover_three_by_three() {
        assert_eq!(OFFSETS.len(), 9);
        assert_eq!(OFFSETS.iter().sum::<i32>(), 0);
    }
}
