//! `bitcount` — population count over a word array (MiBench `bitcount`).
//!
//! Compute-bound, branchy (Kernighan's loop), tiny 4-byte output.

use crate::util::{words_to_bytes, Lcg};
use crate::{Suite, Workload};
use avgi_isa::asm::Assembler;
use avgi_isa::reg::{A0, A1, S0, T0, T1, T2, T3, T4, ZERO};
use avgi_muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_muarch::program::Program;

const WORDS: usize = 256;

/// Builds the workload.
pub fn build() -> Workload {
    let mut lcg = Lcg::new(0xB17C_0047);
    let data = lcg.words(WORDS);
    let total: u32 = data.iter().map(|w| w.count_ones()).sum();

    let mut a = Assembler::new(0);
    a.li32(A0, DATA_BASE);
    a.li32(T0, 0); // word index
    a.li32(T1, WORDS as u32);
    a.li32(S0, 0); // running count
    a.label("wloop");
    a.slli(T2, T0, 2);
    a.add(T2, A0, T2);
    a.lw(T3, T2, 0);
    a.beq(T3, ZERO, "wnext");
    a.label("bitloop"); // Kernighan: clear lowest set bit until zero
    a.addi(T4, T3, -1);
    a.and(T3, T3, T4);
    a.addi(S0, S0, 1);
    a.bne(T3, ZERO, "bitloop");
    a.label("wnext");
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "wloop");
    a.li32(A1, OUTPUT_BASE);
    a.sw(A1, S0, 0);
    a.halt();

    let program = Program::new("bitcount", a.assemble().expect("bitcount assembles"), 4)
        .with_data(DATA_BASE, words_to_bytes(&data));
    Workload {
        name: "bitcount",
        suite: Suite::MiBench,
        program,
        expected: total.to_le_bytes().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_counts_bits() {
        let w = build();
        let total = u32::from_le_bytes(w.expected[..4].try_into().unwrap());
        // 256 uniform words average ~16 set bits each.
        assert!(
            (3000..5300).contains(&total),
            "implausible popcount {total}"
        );
    }
}
