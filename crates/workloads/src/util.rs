//! Shared helpers for workload construction.

/// A deterministic linear congruential generator used to synthesize input
/// datasets. Identical sequences are produced by the Rust reference
/// implementations and by nothing else — the simulated programs receive the
/// data pre-materialized in their memory image.
#[derive(Debug, Clone)]
pub struct Lcg(u32);

impl Lcg {
    /// Creates a generator from a seed.
    pub fn new(seed: u32) -> Self {
        Lcg(seed)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        self.0 = self.0.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        self.0
    }

    /// Next byte.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u32() >> 16) as u8
    }

    /// Fills a vector of `n` words.
    pub fn words(&mut self, n: usize) -> Vec<u32> {
        (0..n).map(|_| self.next_u32()).collect()
    }

    /// Fills a vector of `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_u8()).collect()
    }
}

/// Serializes words little-endian (the machine's byte order).
pub fn words_to_bytes(words: &[u32]) -> Vec<u8> {
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg::new(7);
        let mut b = Lcg::new(7);
        assert_eq!(a.words(16), b.words(16));
    }

    #[test]
    fn words_serialize_little_endian() {
        assert_eq!(words_to_bytes(&[0x0102_0304]), vec![4, 3, 2, 1]);
    }
}
