//! `qsort` — in-place insertion sort of a word array (stands in for MiBench
//! `qsort`: comparison-driven, data-dependent branches, memory shuffling).
//! The sorted array is the output.

use crate::util::{words_to_bytes, Lcg};
use crate::{Suite, Workload};
use avgi_isa::asm::Assembler;
use avgi_isa::reg::{A0, A1, S0, S1, T0, T1, T2, T3, T4, ZERO};
use avgi_muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_muarch::program::Program;

const N: usize = 128;

/// Builds the workload.
pub fn build() -> Workload {
    let mut lcg = Lcg::new(0x4504_7123);
    let data = lcg.words(N);
    let mut sorted = data.clone();
    sorted.sort_unstable();

    let mut a = Assembler::new(0);
    a.li32(A0, DATA_BASE);
    a.li32(T0, 1); // i
    a.li32(T1, N as u32);
    a.label("outer");
    a.slli(T2, T0, 2);
    a.add(T2, A0, T2);
    a.lw(S0, T2, 0); // key = a[i]
    a.addi(T3, T0, -1); // j (signed)
    a.label("inner");
    a.blt(T3, ZERO, "place");
    a.slli(T4, T3, 2);
    a.add(T4, A0, T4);
    a.lw(S1, T4, 0); // a[j]
    a.bgeu(S0, S1, "place"); // key >= a[j]: stop (unsigned order)
    a.sw(T4, S1, 4); // a[j+1] = a[j]
    a.addi(T3, T3, -1);
    a.j("inner");
    a.label("place");
    a.slli(T4, T3, 2);
    a.add(T4, A0, T4);
    a.sw(T4, S0, 4); // a[j+1] = key (wraps correctly for j = -1)
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "outer");
    // Copy the sorted array to the output region.
    a.li32(A1, OUTPUT_BASE);
    a.li32(T0, 0);
    a.label("copy");
    a.slli(T2, T0, 2);
    a.add(T3, A0, T2);
    a.lw(S0, T3, 0);
    a.add(T4, A1, T2);
    a.sw(T4, S0, 0);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "copy");
    a.halt();

    let program = Program::new(
        "qsort",
        a.assemble().expect("qsort assembles"),
        (N * 4) as u32,
    )
    .with_data(DATA_BASE, words_to_bytes(&data));
    Workload {
        name: "qsort",
        suite: Suite::MiBench,
        program,
        expected: words_to_bytes(&sorted),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_is_sorted_permutation() {
        let w = build();
        let words: Vec<u32> = w
            .expected
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(words.len(), N);
        assert!(words.windows(2).all(|p| p[0] <= p[1]));
    }
}
