//! `nas_is` — integer (counting) sort, the NAS IS kernel: histogram,
//! prefix-style emission, data-dependent store streams.

use crate::util::Lcg;
use crate::{Suite, Workload};
use avgi_isa::asm::Assembler;
use avgi_isa::reg::{A0, A1, A2, S0, T0, T1, T2, T3, T4, ZERO};
use avgi_muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_muarch::program::Program;

const KEYS: usize = 2048;
const HIST_ADDR: u32 = DATA_BASE + 0x1000;

fn reference(keys: &[u8]) -> Vec<u8> {
    let mut sorted = keys.to_vec();
    sorted.sort_unstable();
    sorted
}

/// Builds the workload.
pub fn build() -> Workload {
    let mut lcg = Lcg::new(0x15A5_0012);
    let keys = lcg.bytes(KEYS);
    let sorted = reference(&keys);

    let mut a = Assembler::new(0);
    a.li32(A0, DATA_BASE); // keys
    a.li32(A1, HIST_ADDR); // 256-word histogram (zero-initialized memory)
    a.li32(A2, OUTPUT_BASE);
    a.li32(T0, 0);
    a.li32(T1, KEYS as u32);
    a.label("hloop");
    a.add(T2, A0, T0);
    a.lbu(T3, T2, 0);
    a.slli(T3, T3, 2);
    a.add(T3, A1, T3);
    a.lw(T4, T3, 0);
    a.addi(T4, T4, 1);
    a.sw(T3, T4, 0);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "hloop");
    // Emit each value `count` times, in value order.
    a.li32(T0, 0); // value
    a.li32(T1, 256);
    a.li32(S0, 0); // output position
    a.label("vloop");
    a.slli(T2, T0, 2);
    a.add(T2, A1, T2);
    a.lw(T3, T2, 0);
    a.beq(T3, ZERO, "vnext");
    a.label("eloop");
    a.add(T4, A2, S0);
    a.sb(T4, T0, 0);
    a.addi(S0, S0, 1);
    a.addi(T3, T3, -1);
    a.bne(T3, ZERO, "eloop");
    a.label("vnext");
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "vloop");
    a.halt();

    let program = Program::new(
        "nas_is",
        a.assemble().expect("nas_is assembles"),
        KEYS as u32,
    )
    .with_data(DATA_BASE, keys);
    Workload {
        name: "nas_is",
        suite: Suite::Nas,
        program,
        expected: sorted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_is_sorted_permutation_of_keys() {
        let w = build();
        assert!(w.expected.windows(2).all(|p| p[0] <= p[1]));
        assert_eq!(w.expected.len(), KEYS);
    }
}
