//! `basicmath` — GCD and integer square roots over value pairs (MiBench
//! `basicmath`): divide-heavy with long-latency functional-unit pressure.

use crate::util::{words_to_bytes, Lcg};
use crate::{Suite, Workload};
use avgi_isa::asm::Assembler;
use avgi_isa::reg::{A0, A1, A2, A3, S0, S1, S2, T0, T1, T2, T3, T4, T5, T6, T7, ZERO};
use avgi_muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_muarch::program::Program;

const N: usize = 128;
const B_ADDR: u32 = DATA_BASE + 0x400;
const ISQRT_OUT: u32 = OUTPUT_BASE + (N as u32) * 4;

fn gcd(mut x: u32, mut y: u32) -> u32 {
    while y != 0 {
        let r = x % y;
        x = y;
        y = r;
    }
    x
}

/// Bit-by-bit integer square root — exactly the algorithm the assembly runs.
fn isqrt(mut num: u32) -> u32 {
    let mut res = 0u32;
    let mut bit = 1u32 << 30;
    while bit > num {
        bit >>= 2;
    }
    while bit != 0 {
        if num >= res + bit {
            num -= res + bit;
            res = (res >> 1) + bit;
        } else {
            res >>= 1;
        }
        bit >>= 2;
    }
    res
}

/// Builds the workload.
pub fn build() -> Workload {
    let mut lcg = Lcg::new(0xBA51_C347);
    let a_in = lcg.words(N);
    let b_in = lcg.words(N);
    let mut expected_words = Vec::with_capacity(2 * N);
    for i in 0..N {
        expected_words.push(gcd(a_in[i], b_in[i]));
    }
    for &x in &a_in {
        expected_words.push(isqrt(x));
    }

    let mut a = Assembler::new(0);
    a.li32(A0, DATA_BASE); // a[]
    a.li32(A1, B_ADDR); // b[]
    a.li32(A2, OUTPUT_BASE); // gcd out
    a.li32(A3, ISQRT_OUT); // isqrt out
    a.li32(T0, 0);
    a.li32(T1, N as u32);
    a.label("outer");
    a.slli(T6, T0, 2);
    a.add(T7, A0, T6);
    a.lw(T2, T7, 0); // a
    a.add(T7, A1, T6);
    a.lw(T4, T7, 0); // b
                     // Euclid's GCD on (T3, T4).
    a.mv(T3, T2);
    a.label("gcd_loop");
    a.beq(T4, ZERO, "gcd_done");
    a.remu(T5, T3, T4);
    a.mv(T3, T4);
    a.mv(T4, T5);
    a.j("gcd_loop");
    a.label("gcd_done");
    a.add(T7, A2, T6);
    a.sw(T7, T3, 0);
    // Bit-by-bit isqrt of `a` on (S0 num, S1 res, S2 bit).
    a.mv(S0, T2);
    a.li32(S1, 0);
    a.li32(S2, 0x4000_0000);
    a.label("shrink");
    a.bgeu(S0, S2, "isq_loop"); // bit <= num: start
    a.srli(S2, S2, 2);
    a.bne(S2, ZERO, "shrink");
    a.label("isq_loop");
    a.beq(S2, ZERO, "isq_done");
    a.add(T5, S1, S2); // res + bit
    a.bltu(S0, T5, "isq_else");
    a.sub(S0, S0, T5);
    a.srli(S1, S1, 1);
    a.add(S1, S1, S2);
    a.j("isq_next");
    a.label("isq_else");
    a.srli(S1, S1, 1);
    a.label("isq_next");
    a.srli(S2, S2, 2);
    a.j("isq_loop");
    a.label("isq_done");
    a.add(T7, A3, T6);
    a.sw(T7, S1, 0);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, "outer");
    a.halt();

    let program = Program::new(
        "basicmath",
        a.assemble().expect("basicmath assembles"),
        2 * (N as u32) * 4,
    )
    .with_data(DATA_BASE, words_to_bytes(&a_in))
    .with_data(B_ADDR, words_to_bytes(&b_in));
    Workload {
        name: "basicmath",
        suite: Suite::MiBench,
        program,
        expected: words_to_bytes(&expected_words),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_known_values() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd(0, 9), 9);
        assert_eq!(gcd(9, 0), 9);
    }

    #[test]
    fn isqrt_is_floor_sqrt() {
        for n in [0u32, 1, 2, 3, 4, 15, 16, 17, 99, 100, u32::MAX] {
            let r = isqrt(n);
            assert!(u64::from(r) * u64::from(r) <= u64::from(n));
            assert!((u64::from(r) + 1) * (u64::from(r) + 1) > u64::from(n));
        }
    }
}
