use avgi_muarch::config::MuarchConfig;
use avgi_muarch::pipeline::capture_golden;
fn main() {
    for w in avgi_workloads::all() {
        let g = capture_golden(&w.program, &MuarchConfig::big(), 20_000_000);
        println!(
            "{:<14} cycles={:<8} instrs={:<8} out={}B",
            w.name,
            g.cycles,
            g.trace.len(),
            w.output_bytes()
        );
    }
}
