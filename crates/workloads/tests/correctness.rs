//! Every workload must run to completion on the simulator and produce
//! exactly the reference output — on both microarchitecture configurations.
//! This is the end-to-end validation of the assembly programs, the
//! assembler, and the simulator's architectural semantics at once.

use avgi_muarch::config::MuarchConfig;
use avgi_muarch::pipeline::capture_golden;

const MAX_CYCLES: u64 = 20_000_000;

fn check_all(cfg: MuarchConfig) {
    for w in avgi_workloads::all() {
        let golden = capture_golden(&w.program, &cfg, MAX_CYCLES);
        assert_eq!(
            golden.output, w.expected,
            "{} output mismatch on {}",
            w.name, cfg.name
        );
        assert!(
            golden.cycles > 1_000,
            "{}: implausibly short run ({} cycles)",
            w.name,
            golden.cycles
        );
    }
}

#[test]
fn all_workloads_match_reference_on_big_config() {
    check_all(MuarchConfig::big());
}

#[test]
fn all_workloads_match_reference_on_small_config() {
    check_all(MuarchConfig::small());
}

#[test]
fn execution_lengths_are_in_campaign_range() {
    // Campaigns assume golden runs of roughly 10k-1M cycles: long enough
    // that residency-time windows are much shorter than the run, short
    // enough that thousands of injections are tractable.
    let cfg = MuarchConfig::big();
    for w in avgi_workloads::all() {
        let golden = capture_golden(&w.program, &cfg, MAX_CYCLES);
        assert!(
            (5_000..2_000_000).contains(&golden.cycles),
            "{}: {} cycles outside the intended range",
            w.name,
            golden.cycles
        );
    }
}
