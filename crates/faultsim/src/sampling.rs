//! Statistical fault sampling, following Leveugle et al., *"Statistical
//! fault injection: Quantified error and confidence"* (DATE 2009) — the
//! paper's reference \[1\] for sample-size / error-margin calculations.
//!
//! The paper's operating point — 2,000 faults per (structure, workload) —
//! corresponds to a 2.88 % error margin at 99 % confidence, which
//! [`error_margin`] reproduces exactly.

use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::{Fault, FaultSite, Structure};
use avgi_rng::Rng;

/// Confidence levels with their normal-distribution z-values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Confidence {
    /// 90 % (z = 1.645).
    C90,
    /// 95 % (z = 1.960).
    C95,
    /// 99 % (z = 2.576), the paper's choice.
    C99,
}

impl Confidence {
    /// The two-sided z-value.
    pub fn z(self) -> f64 {
        match self {
            Confidence::C90 => 1.645,
            Confidence::C95 => 1.960,
            Confidence::C99 => 2.576,
        }
    }
}

/// A statistically meaningless input to [`error_margin`] or
/// [`sample_size`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingError {
    /// `error_margin` was asked about an empty campaign: no margin exists
    /// for zero samples.
    ZeroSamples,
    /// `sample_size` was given a margin that is zero, negative, NaN, or
    /// infinite: no finite campaign achieves it.
    InvalidMargin,
    /// `sample_faults` was asked to sample injection cycles from a golden
    /// run of zero cycles: there is no execution to inject into.
    EmptyGoldenRun,
}

impl std::fmt::Display for SamplingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplingError::ZeroSamples => {
                write!(f, "error margin is undefined for zero samples")
            }
            SamplingError::InvalidMargin => {
                write!(f, "sample size requires a finite error margin > 0")
            }
            SamplingError::EmptyGoldenRun => {
                write!(
                    f,
                    "cannot sample injection cycles from a zero-cycle golden run"
                )
            }
        }
    }
}

impl std::error::Error for SamplingError {}

/// Error margin for `n` samples at the given confidence, with the
/// worst-case proportion p = 0.5 (infinite fault population).
///
/// Fails with [`SamplingError::ZeroSamples`] for `n == 0` (the naive
/// formula would divide by zero and report an infinite margin).
///
/// ```
/// use avgi_faultsim::sampling::{error_margin, Confidence};
/// let e = error_margin(2_000, Confidence::C99).unwrap();
/// assert!((e - 0.0288).abs() < 0.0002, "paper's operating point");
/// ```
pub fn error_margin(n: usize, confidence: Confidence) -> Result<f64, SamplingError> {
    if n == 0 {
        return Err(SamplingError::ZeroSamples);
    }
    Ok(confidence.z() * (0.25 / n as f64).sqrt())
}

/// Sample size needed for error margin `e` at the given confidence
/// (worst-case p = 0.5, infinite population).
///
/// Fails with [`SamplingError::InvalidMargin`] unless `e` is finite and
/// positive. For margins so tight the count overflows `usize`, the result
/// saturates at `usize::MAX` (the float-to-int cast saturates) rather than
/// wrapping.
pub fn sample_size(e: f64, confidence: Confidence) -> Result<usize, SamplingError> {
    if !(e.is_finite() && e > 0.0) {
        return Err(SamplingError::InvalidMargin);
    }
    let z = confidence.z();
    Ok((z * z * 0.25 / (e * e)).ceil() as usize)
}

/// Draws `n` uniform single-bit transient faults for `structure`: uniform
/// over the structure's storage bits and uniform over the fault-free
/// execution's `golden_cycles`, as prescribed by the paper's §II.D.
///
/// Fails with [`SamplingError::EmptyGoldenRun`] when `golden_cycles == 0`:
/// a zero-cycle golden run has no execution to inject into, and the old
/// behavior of silently clamping to one cycle piled every fault onto cycle
/// 0 with no signal that the campaign was degenerate.
pub fn sample_faults(
    structure: Structure,
    cfg: &MuarchConfig,
    golden_cycles: u64,
    n: usize,
    seed: u64,
) -> Result<Vec<Fault>, SamplingError> {
    if golden_cycles == 0 {
        return Err(SamplingError::EmptyGoldenRun);
    }
    let bits = structure.bit_count(cfg);
    let mut rng = Rng::seed_from_u64(seed);
    Ok((0..n)
        .map(|_| Fault {
            site: FaultSite {
                structure,
                bit: rng.gen_range_u64(bits),
            },
            cycle: rng.gen_range_u64(golden_cycles),
        })
        .collect())
}

/// Expands a single-bit fault into a spatially adjacent multi-bit burst of
/// `width` bits (§VII.A): neighbouring bits of the same structure flipped
/// at the same cycle, clamped at the end of the array. A burst wider than
/// the structure covers exactly the structure's bits — never sites beyond
/// them.
pub fn multi_bit_burst(fault: Fault, width: u32, cfg: &MuarchConfig) -> Vec<Fault> {
    let bits = fault.site.structure.bit_count(cfg);
    let len = u64::from(width.max(1)).min(bits);
    let start = fault.site.bit.min(bits - len);
    (0..len)
        .map(|k| Fault {
            site: FaultSite {
                structure: fault.site.structure,
                bit: start + k,
            },
            cycle: fault.cycle,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_operating_point() {
        let e = error_margin(2_000, Confidence::C99).unwrap();
        assert!((e - 0.0288).abs() < 2e-4, "got {e}");
        // Inverse direction.
        let n = sample_size(0.0288, Confidence::C99).unwrap();
        assert!((1_900..2_100).contains(&n), "got {n}");
    }

    #[test]
    fn margin_shrinks_with_samples() {
        let m = |n, c| error_margin(n, c).unwrap();
        assert!(m(4_000, Confidence::C99) < m(1_000, Confidence::C99));
        assert!(m(1_000, Confidence::C90) < m(1_000, Confidence::C99));
    }

    #[test]
    fn degenerate_sampling_inputs_are_domain_errors() {
        // Pre-fix, these divided by zero: error_margin(0, _) returned inf
        // and sample_size(0.0, _) cast inf to usize.
        assert_eq!(
            error_margin(0, Confidence::C99),
            Err(SamplingError::ZeroSamples)
        );
        for bad in [0.0, -0.1, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                sample_size(bad, Confidence::C95),
                Err(SamplingError::InvalidMargin),
                "margin {bad}"
            );
        }
        // One sample is degenerate but defined; a large finite margin too.
        assert!(error_margin(1, Confidence::C90).unwrap().is_finite());
        assert_eq!(sample_size(1.0, Confidence::C90).unwrap(), 1);
        // Ludicrously tight margins saturate instead of wrapping.
        assert_eq!(
            sample_size(f64::MIN_POSITIVE, Confidence::C99).unwrap(),
            usize::MAX
        );
    }

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let cfg = MuarchConfig::big();
        let a = sample_faults(Structure::RegFile, &cfg, 10_000, 100, 42).unwrap();
        let b = sample_faults(Structure::RegFile, &cfg, 10_000, 100, 42).unwrap();
        assert_eq!(a, b);
        let bits = Structure::RegFile.bit_count(&cfg);
        for f in &a {
            assert!(f.site.bit < bits);
            assert!(f.cycle < 10_000);
        }
        let c = sample_faults(Structure::RegFile, &cfg, 10_000, 100, 43).unwrap();
        assert_ne!(a, c, "different seed, different sample");
    }

    #[test]
    fn zero_cycle_golden_run_is_a_sampling_error() {
        // Pre-fix, `golden_cycles == 0` was silently clamped to 1, piling
        // every fault onto cycle 0 of a run that never executed.
        let cfg = MuarchConfig::big();
        assert_eq!(
            sample_faults(Structure::RegFile, &cfg, 0, 100, 42),
            Err(SamplingError::EmptyGoldenRun)
        );
        // One cycle is degenerate but well-defined: every fault lands on it.
        let faults = sample_faults(Structure::RegFile, &cfg, 1, 16, 42).unwrap();
        assert!(faults.iter().all(|f| f.cycle == 0));
    }

    #[test]
    fn sampling_covers_the_bit_space() {
        let cfg = MuarchConfig::big();
        let faults = sample_faults(Structure::L2Data, &cfg, 100_000, 2_000, 7).unwrap();
        let bits = Structure::L2Data.bit_count(&cfg);
        let lo = faults.iter().filter(|f| f.site.bit < bits / 2).count();
        // Roughly balanced halves (binomial, generous tolerance).
        assert!(
            (800..1_200).contains(&lo),
            "skewed sampling: {lo}/2000 in low half"
        );
    }

    #[test]
    fn burst_is_adjacent_and_clamped() {
        let cfg = MuarchConfig::big();
        let f = Fault {
            site: FaultSite {
                structure: Structure::RegFile,
                bit: 5,
            },
            cycle: 9,
        };
        let burst = multi_bit_burst(f, 3, &cfg);
        assert_eq!(
            burst.iter().map(|f| f.site.bit).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
        assert!(burst.iter().all(|b| b.cycle == 9));
        // Clamp at the end of the array.
        let bits = Structure::RegFile.bit_count(&cfg);
        let f = Fault {
            site: FaultSite {
                structure: Structure::RegFile,
                bit: bits - 1,
            },
            cycle: 0,
        };
        let burst = multi_bit_burst(f, 4, &cfg);
        assert_eq!(burst.last().unwrap().site.bit, bits - 1);
        assert_eq!(burst.len(), 4);
    }

    #[test]
    fn burst_wider_than_the_structure_stays_in_range() {
        // Pre-fix, `start` saturated to 0 but the burst still spanned
        // `width` bits, emitting fault sites past the end of the array.
        let cfg = MuarchConfig::big();
        let structure = Structure::Itlb;
        let bits = structure.bit_count(&cfg);
        let width = u32::try_from(bits + 7).expect("test structure small enough");
        let f = Fault {
            site: FaultSite { structure, bit: 3 },
            cycle: 1,
        };
        let burst = multi_bit_burst(f, width, &cfg);
        assert_eq!(burst.len() as u64, bits, "burst clamps to the structure");
        for (k, b) in burst.iter().enumerate() {
            assert!(b.site.bit < bits, "bit {} out of range", b.site.bit);
            assert_eq!(b.site.bit, k as u64, "burst covers the whole structure");
        }
    }
}
