//! Statistical fault sampling, following Leveugle et al., *"Statistical
//! fault injection: Quantified error and confidence"* (DATE 2009) — the
//! paper's reference \[1\] for sample-size / error-margin calculations.
//!
//! The paper's operating point — 2,000 faults per (structure, workload) —
//! corresponds to a 2.88 % error margin at 99 % confidence, which
//! [`error_margin`] reproduces exactly.

use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::{Fault, FaultSite, Structure};
use avgi_rng::Rng;

/// Confidence levels with their normal-distribution z-values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Confidence {
    /// 90 % (z = 1.645).
    C90,
    /// 95 % (z = 1.960).
    C95,
    /// 99 % (z = 2.576), the paper's choice.
    C99,
}

impl Confidence {
    /// The two-sided z-value.
    pub fn z(self) -> f64 {
        match self {
            Confidence::C90 => 1.645,
            Confidence::C95 => 1.960,
            Confidence::C99 => 2.576,
        }
    }

    /// The confidence level as a fraction in (0, 1), for the continuous
    /// APIs ([`z_value`], [`sample_size_at`], [`wilson_interval`]).
    pub fn level(self) -> f64 {
        match self {
            Confidence::C90 => 0.90,
            Confidence::C95 => 0.95,
            Confidence::C99 => 0.99,
        }
    }
}

/// A statistically meaningless input to [`error_margin`] or
/// [`sample_size`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingError {
    /// `error_margin` was asked about an empty campaign: no margin exists
    /// for zero samples.
    ZeroSamples,
    /// `sample_size` was given a margin that is zero, negative, NaN, or
    /// infinite: no finite campaign achieves it.
    InvalidMargin,
    /// `sample_faults` was asked to sample injection cycles from a golden
    /// run of zero cycles: there is no execution to inject into.
    EmptyGoldenRun,
    /// A continuous confidence level outside the open interval (0, 1) — or
    /// NaN — was passed to [`z_value`], [`error_margin_at`],
    /// [`sample_size_at`], or [`wilson_interval`]. Confidence is a
    /// probability; the old behavior of clamping out-of-range levels
    /// silently turned a caller bug (e.g. passing `95` instead of `0.95`)
    /// into a wrong-but-plausible sample size.
    InvalidConfidence,
}

impl std::fmt::Display for SamplingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplingError::ZeroSamples => {
                write!(f, "error margin is undefined for zero samples")
            }
            SamplingError::InvalidMargin => {
                write!(f, "sample size requires a finite error margin > 0")
            }
            SamplingError::EmptyGoldenRun => {
                write!(
                    f,
                    "cannot sample injection cycles from a zero-cycle golden run"
                )
            }
            SamplingError::InvalidConfidence => {
                write!(f, "confidence level must lie strictly inside (0, 1)")
            }
        }
    }
}

impl std::error::Error for SamplingError {}

/// Error margin for `n` samples at the given confidence, with the
/// worst-case proportion p = 0.5 (infinite fault population).
///
/// Fails with [`SamplingError::ZeroSamples`] for `n == 0` (the naive
/// formula would divide by zero and report an infinite margin).
///
/// ```
/// use avgi_faultsim::sampling::{error_margin, Confidence};
/// let e = error_margin(2_000, Confidence::C99).unwrap();
/// assert!((e - 0.0288).abs() < 0.0002, "paper's operating point");
/// ```
pub fn error_margin(n: usize, confidence: Confidence) -> Result<f64, SamplingError> {
    if n == 0 {
        return Err(SamplingError::ZeroSamples);
    }
    Ok(confidence.z() * (0.25 / n as f64).sqrt())
}

/// Sample size needed for error margin `e` at the given confidence
/// (worst-case p = 0.5, infinite population).
///
/// Fails with [`SamplingError::InvalidMargin`] unless `e` is finite and
/// positive. For margins so tight the count overflows `usize`, the result
/// saturates at `usize::MAX` (the float-to-int cast saturates) rather than
/// wrapping.
pub fn sample_size(e: f64, confidence: Confidence) -> Result<usize, SamplingError> {
    if !(e.is_finite() && e > 0.0) {
        return Err(SamplingError::InvalidMargin);
    }
    let z = confidence.z();
    Ok((z * z * 0.25 / (e * e)).ceil() as usize)
}

/// The two-sided z-value for a continuous confidence level in (0, 1) —
/// the inverse normal CDF evaluated at `(1 + confidence) / 2`.
///
/// Fails with [`SamplingError::InvalidConfidence`] for levels at or outside
/// the open unit interval (including NaN): confidence is a probability, and
/// silently clamping `95` to mean "95 %" would manufacture a plausible but
/// wrong answer. Uses the Acklam rational approximation of the probit
/// function (absolute error < 1.2e-9 over the whole domain), so the named
/// [`Confidence`] levels round-trip: `z_value(c.level())` agrees with
/// `c.z()` to the three decimals the enum tabulates.
pub fn z_value(confidence: f64) -> Result<f64, SamplingError> {
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(SamplingError::InvalidConfidence);
    }
    Ok(probit((1.0 + confidence) / 2.0))
}

/// Inverse standard-normal CDF (Acklam's algorithm) for `p` in (0, 1).
fn probit(p: f64) -> f64 {
    // Coefficients of the central and tail rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -probit(1.0 - p)
    }
}

/// [`error_margin`] at a continuous confidence level in (0, 1).
pub fn error_margin_at(n: usize, confidence: f64) -> Result<f64, SamplingError> {
    if n == 0 {
        return Err(SamplingError::ZeroSamples);
    }
    Ok(z_value(confidence)? * (0.25 / n as f64).sqrt())
}

/// [`sample_size`] at a continuous confidence level in (0, 1).
///
/// Unlike the enum-typed [`sample_size`], the level here is caller data
/// (e.g. a `--confidence 0.95` flag), so it is validated: levels at or
/// outside (0, 1) fail with [`SamplingError::InvalidConfidence`] instead of
/// being clamped into a silently wrong campaign size.
pub fn sample_size_at(e: f64, confidence: f64) -> Result<usize, SamplingError> {
    let z = z_value(confidence)?;
    if !(e.is_finite() && e > 0.0) {
        return Err(SamplingError::InvalidMargin);
    }
    Ok((z * z * 0.25 / (e * e)).ceil() as usize)
}

/// The Wilson score interval for a proportion: `(lo, hi)` bounding the true
/// rate at the given confidence after observing proportion `p_hat` over `n`
/// (possibly *effective*, hence fractional) samples.
///
/// Unlike the Wald interval behind [`error_margin`], Wilson stays inside
/// `[0, 1]` and behaves at the extremes (`p_hat` near 0 or 1, small `n`) —
/// exactly the regime an adaptive campaign's early-stopping rule lives in.
/// `p_hat` is clamped to `[0, 1]` (a Horvitz–Thompson estimate can
/// legitimately poke slightly outside); `n` must be positive and finite,
/// else [`SamplingError::ZeroSamples`].
pub fn wilson_interval(p_hat: f64, n: f64, confidence: f64) -> Result<(f64, f64), SamplingError> {
    let z = z_value(confidence)?;
    if !(n.is_finite() && n > 0.0) {
        return Err(SamplingError::ZeroSamples);
    }
    let p = p_hat.clamp(0.0, 1.0);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    Ok(((center - half).max(0.0), (center + half).min(1.0)))
}

/// Draws `n` uniform single-bit transient faults for `structure`: uniform
/// over the structure's storage bits and uniform over the fault-free
/// execution's `golden_cycles`, as prescribed by the paper's §II.D.
///
/// Fails with [`SamplingError::EmptyGoldenRun`] when `golden_cycles == 0`:
/// a zero-cycle golden run has no execution to inject into, and the old
/// behavior of silently clamping to one cycle piled every fault onto cycle
/// 0 with no signal that the campaign was degenerate.
pub fn sample_faults(
    structure: Structure,
    cfg: &MuarchConfig,
    golden_cycles: u64,
    n: usize,
    seed: u64,
) -> Result<Vec<Fault>, SamplingError> {
    if golden_cycles == 0 {
        return Err(SamplingError::EmptyGoldenRun);
    }
    let bits = structure.bit_count(cfg);
    let mut rng = Rng::seed_from_u64(seed);
    Ok((0..n)
        .map(|_| Fault {
            site: FaultSite {
                structure,
                bit: rng.gen_range_u64(bits),
            },
            cycle: rng.gen_range_u64(golden_cycles),
        })
        .collect())
}

/// Expands a single-bit fault into a spatially adjacent multi-bit burst of
/// `width` bits (§VII.A): neighbouring bits of the same structure flipped
/// at the same cycle, clamped at the end of the array. A burst wider than
/// the structure covers exactly the structure's bits — never sites beyond
/// them.
pub fn multi_bit_burst(fault: Fault, width: u32, cfg: &MuarchConfig) -> Vec<Fault> {
    let bits = fault.site.structure.bit_count(cfg);
    let len = u64::from(width.max(1)).min(bits);
    let start = fault.site.bit.min(bits - len);
    (0..len)
        .map(|k| Fault {
            site: FaultSite {
                structure: fault.site.structure,
                bit: start + k,
            },
            cycle: fault.cycle,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_operating_point() {
        let e = error_margin(2_000, Confidence::C99).unwrap();
        assert!((e - 0.0288).abs() < 2e-4, "got {e}");
        // Inverse direction.
        let n = sample_size(0.0288, Confidence::C99).unwrap();
        assert!((1_900..2_100).contains(&n), "got {n}");
    }

    #[test]
    fn margin_shrinks_with_samples() {
        let m = |n, c| error_margin(n, c).unwrap();
        assert!(m(4_000, Confidence::C99) < m(1_000, Confidence::C99));
        assert!(m(1_000, Confidence::C90) < m(1_000, Confidence::C99));
    }

    #[test]
    fn degenerate_sampling_inputs_are_domain_errors() {
        // Pre-fix, these divided by zero: error_margin(0, _) returned inf
        // and sample_size(0.0, _) cast inf to usize.
        assert_eq!(
            error_margin(0, Confidence::C99),
            Err(SamplingError::ZeroSamples)
        );
        for bad in [0.0, -0.1, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                sample_size(bad, Confidence::C95),
                Err(SamplingError::InvalidMargin),
                "margin {bad}"
            );
        }
        // One sample is degenerate but defined; a large finite margin too.
        assert!(error_margin(1, Confidence::C90).unwrap().is_finite());
        assert_eq!(sample_size(1.0, Confidence::C90).unwrap(), 1);
        // Ludicrously tight margins saturate instead of wrapping.
        assert_eq!(
            sample_size(f64::MIN_POSITIVE, Confidence::C99).unwrap(),
            usize::MAX
        );
    }

    #[test]
    fn confidence_outside_unit_interval_is_a_distinct_error() {
        // Regression: the continuous-confidence path must reject levels at
        // or outside (0, 1) with its own error — not clamp them. A caller
        // passing `95` for "95 %" used to get a clamped, plausible-looking
        // sample size; now the bug is loud and distinguishable from a bad
        // margin.
        for bad in [0.0, 1.0, -0.5, 95.0, f64::NAN, f64::INFINITY] {
            assert_eq!(
                sample_size_at(0.03, bad),
                Err(SamplingError::InvalidConfidence),
                "confidence {bad}"
            );
            assert_eq!(z_value(bad), Err(SamplingError::InvalidConfidence));
            assert_eq!(
                error_margin_at(100, bad),
                Err(SamplingError::InvalidConfidence)
            );
            assert_eq!(
                wilson_interval(0.5, 100.0, bad),
                Err(SamplingError::InvalidConfidence)
            );
        }
        // The two error kinds stay distinct: a bad margin at a good level
        // is still InvalidMargin.
        assert_eq!(sample_size_at(0.0, 0.95), Err(SamplingError::InvalidMargin));
        assert_eq!(error_margin_at(0, 0.95), Err(SamplingError::ZeroSamples));
    }

    #[test]
    fn continuous_confidence_agrees_with_the_named_levels() {
        for c in [Confidence::C90, Confidence::C95, Confidence::C99] {
            let z = z_value(c.level()).unwrap();
            assert!(
                (z - c.z()).abs() < 5e-4,
                "{c:?}: probit {z} vs tabulated {}",
                c.z()
            );
            let n_enum = sample_size(0.0288, c).unwrap();
            let n_cont = sample_size_at(0.0288, c.level()).unwrap();
            assert!(n_enum.abs_diff(n_cont) <= 2, "{c:?}: {n_enum} vs {n_cont}");
        }
        // Deep tails exercise the tail branch of the approximation.
        let z = z_value(0.999_999).unwrap();
        assert!((4.0..6.0).contains(&z), "got {z}");
    }

    #[test]
    fn wilson_interval_is_sane() {
        // Covers the point estimate, stays in [0,1], shrinks with n.
        let (lo, hi) = wilson_interval(0.3, 100.0, 0.95).unwrap();
        assert!(lo < 0.3 && 0.3 < hi);
        assert!(lo > 0.0 && hi < 1.0);
        let (lo2, hi2) = wilson_interval(0.3, 10_000.0, 0.95).unwrap();
        assert!(hi2 - lo2 < hi - lo, "more samples, tighter interval");
        // Extremes stay bounded (Wald would collapse to a point at p=0).
        let (lo0, hi0) = wilson_interval(0.0, 50.0, 0.95).unwrap();
        assert_eq!(lo0, 0.0);
        assert!(hi0 > 0.0 && hi0 < 0.2);
        let (lo1, hi1) = wilson_interval(1.0, 50.0, 0.95).unwrap();
        assert!(lo1 < 1.0 && hi1 > 1.0 - 1e-12 && hi1 <= 1.0);
        // HT estimates can poke outside [0,1]; they are clamped, not NaN.
        let (lo, hi) = wilson_interval(1.07, 50.0, 0.95).unwrap();
        assert!(lo.is_finite() && hi > 1.0 - 1e-12 && hi <= 1.0);
        assert_eq!(
            wilson_interval(0.5, 0.0, 0.95),
            Err(SamplingError::ZeroSamples)
        );
    }

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let cfg = MuarchConfig::big();
        let a = sample_faults(Structure::RegFile, &cfg, 10_000, 100, 42).unwrap();
        let b = sample_faults(Structure::RegFile, &cfg, 10_000, 100, 42).unwrap();
        assert_eq!(a, b);
        let bits = Structure::RegFile.bit_count(&cfg);
        for f in &a {
            assert!(f.site.bit < bits);
            assert!(f.cycle < 10_000);
        }
        let c = sample_faults(Structure::RegFile, &cfg, 10_000, 100, 43).unwrap();
        assert_ne!(a, c, "different seed, different sample");
    }

    #[test]
    fn zero_cycle_golden_run_is_a_sampling_error() {
        // Pre-fix, `golden_cycles == 0` was silently clamped to 1, piling
        // every fault onto cycle 0 of a run that never executed.
        let cfg = MuarchConfig::big();
        assert_eq!(
            sample_faults(Structure::RegFile, &cfg, 0, 100, 42),
            Err(SamplingError::EmptyGoldenRun)
        );
        // One cycle is degenerate but well-defined: every fault lands on it.
        let faults = sample_faults(Structure::RegFile, &cfg, 1, 16, 42).unwrap();
        assert!(faults.iter().all(|f| f.cycle == 0));
    }

    #[test]
    fn sampling_covers_the_bit_space() {
        let cfg = MuarchConfig::big();
        let faults = sample_faults(Structure::L2Data, &cfg, 100_000, 2_000, 7).unwrap();
        let bits = Structure::L2Data.bit_count(&cfg);
        let lo = faults.iter().filter(|f| f.site.bit < bits / 2).count();
        // Roughly balanced halves (binomial, generous tolerance).
        assert!(
            (800..1_200).contains(&lo),
            "skewed sampling: {lo}/2000 in low half"
        );
    }

    #[test]
    fn burst_is_adjacent_and_clamped() {
        let cfg = MuarchConfig::big();
        let f = Fault {
            site: FaultSite {
                structure: Structure::RegFile,
                bit: 5,
            },
            cycle: 9,
        };
        let burst = multi_bit_burst(f, 3, &cfg);
        assert_eq!(
            burst.iter().map(|f| f.site.bit).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
        assert!(burst.iter().all(|b| b.cycle == 9));
        // Clamp at the end of the array.
        let bits = Structure::RegFile.bit_count(&cfg);
        let f = Fault {
            site: FaultSite {
                structure: Structure::RegFile,
                bit: bits - 1,
            },
            cycle: 0,
        };
        let burst = multi_bit_burst(f, 4, &cfg);
        assert_eq!(burst.last().unwrap().site.bit, bits - 1);
        assert_eq!(burst.len(), 4);
    }

    #[test]
    fn burst_wider_than_the_structure_stays_in_range() {
        // Pre-fix, `start` saturated to 0 but the burst still spanned
        // `width` bits, emitting fault sites past the end of the array.
        let cfg = MuarchConfig::big();
        let structure = Structure::Itlb;
        let bits = structure.bit_count(&cfg);
        let width = u32::try_from(bits + 7).expect("test structure small enough");
        let f = Fault {
            site: FaultSite { structure, bit: 3 },
            cycle: 1,
        };
        let burst = multi_bit_burst(f, width, &cfg);
        assert_eq!(burst.len() as u64, bits, "burst clamps to the structure");
        for (k, b) in burst.iter().enumerate() {
            assert!(b.site.bit < bits, "bit {} out of range", b.site.bit);
            assert_eq!(b.site.bit, k as u64, "burst covers the whole structure");
        }
    }
}
