//! Lockstep cross-check of the shared-prefix batched engine (`--xcheck`).
//!
//! The batched engine claims bit-identity with the classic per-run engine:
//! same [`InjectionResult`]s, same deterministic telemetry counters, same
//! commit streams. This module *proves* it for a concrete campaign, three
//! ways:
//!
//! 1. **Substrate**: the golden capture is lockstep-verified against the
//!    `avgi-refmodel` architectural interpreter — if the fault-free commit
//!    stream is wrong, equality between two engines proves nothing.
//! 2. **Campaign equality**: the same campaign runs once batched and once
//!    with batching disabled, each with a fresh metrics collector; every
//!    per-run observable and the deterministic telemetry counters must be
//!    equal.
//! 3. **Fork anatomy**: for a sample of faults, the carrier/fork execution
//!    is replayed with full trace recording next to a classic pre-armed run
//!    from reset, and the two commit streams are compared record-for-record
//!    (cycle numbers included). The fault-free prefix of each stream —
//!    everything before the first deviation — is additionally
//!    lockstep-verified against the reference model via
//!    [`avgi_refmodel::verify_trace_prefix`].
//!
//! Any disagreement is reported as a human-readable error string naming the
//! fault and the first differing observable.
//!
//! A second prover, [`run_xtier`] (`--xtier`), targets the *execution-tier*
//! claim instead of the batching claim: the fast pre-decoded interpreter
//! ([`avgi_refmodel::FastModel`]) must be bit-identical to both the
//! reference interpreter and the cycle-accurate pipeline, and swapping the
//! masked-verification oracle between tiers must not change a single
//! campaign observable.

use crate::campaign::{golden_for, run_campaign, watchdog_budget, CampaignConfig, CampaignResult};
use crate::sampling::sample_faults;
use crate::telemetry::MetricsCollector;
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::Fault;
use avgi_muarch::pipeline::Sim;
use avgi_muarch::run::{RunControl, RunReport};
use avgi_muarch::trace::GoldenRun;
use avgi_workloads::Workload;
use std::sync::Arc;

/// Outcome of a clean cross-check (see [`run_xcheck`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XcheckReport {
    /// Workload checked.
    pub workload: String,
    /// Injected runs compared between the batched and unbatched engines.
    pub runs_compared: usize,
    /// Whether the deterministic telemetry counters were byte-identical.
    pub telemetry_identical: bool,
    /// Faults whose fork execution was replayed trace-for-trace.
    pub forks_traced: usize,
    /// Fault-free prefix commits lockstep-verified against the reference
    /// model across all traced forks.
    pub prefix_commits_verified: u64,
}

impl std::fmt::Display for XcheckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "xcheck `{}`: {} runs bit-identical, telemetry identical, {} forks traced \
             ({} prefix commits architecturally verified)",
            self.workload, self.runs_compared, self.forks_traced, self.prefix_commits_verified
        )
    }
}

/// How many faults get the expensive full-trace fork replay.
const TRACED_FORKS: usize = 8;

/// Cross-checks the batched engine against the unbatched engine and the
/// architectural reference model for one campaign configuration.
///
/// `ccfg.batch <= 1` is rejected: the check would compare the classic engine
/// with itself. Observers on `ccfg` are replaced with fresh collectors (the
/// comparison needs exclusive ones).
pub fn run_xcheck(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    ccfg: &CampaignConfig,
) -> Result<XcheckReport, String> {
    if ccfg.batch <= 1 {
        return Err("xcheck needs a batched configuration (batch > 1)".to_string());
    }
    // 1. Substrate: the golden stream itself must be architecturally right.
    avgi_refmodel::verify_golden(&workload.program, golden)
        .map_err(|d| format!("golden run of `{}` fails lockstep: {d}", workload.name))?;

    // 2. Campaign equality, batched vs unbatched, telemetry included.
    let batched_metrics = Arc::new(MetricsCollector::new());
    let unbatched_metrics = Arc::new(MetricsCollector::new());
    let mut batched_cfg = ccfg.clone().with_observer(batched_metrics.clone());
    batched_cfg.verify_masked = false;
    let unbatched_cfg = batched_cfg
        .clone()
        .with_batch(1)
        .with_observer(unbatched_metrics.clone());
    let batched = run_campaign(workload, cfg, golden, &batched_cfg);
    let unbatched = run_campaign(workload, cfg, golden, &unbatched_cfg);
    compare_campaigns(("batched", &batched), ("unbatched", &unbatched))?;
    let bt = batched_metrics.snapshot().deterministic_counters_json();
    let ut = unbatched_metrics.snapshot().deterministic_counters_json();
    if bt != ut {
        return Err(format!(
            "deterministic telemetry counters differ between engines:\n  batched:   {bt}\n  \
             unbatched: {ut}"
        ));
    }

    // 3. Fork anatomy: replay a sample of faults with full trace recording
    // through both execution shapes and compare commit streams.
    let faults = sample_faults(ccfg.structure, cfg, golden.cycles, ccfg.faults, ccfg.seed)
        .map_err(|e| format!("fault sampling failed: {e}"))?;
    let step = (faults.len() / TRACED_FORKS).max(1);
    let sample: Vec<Fault> = faults
        .iter()
        .step_by(step)
        .take(TRACED_FORKS)
        .copied()
        .collect();
    let mut prefix_commits = 0u64;
    for &fault in &sample {
        prefix_commits += trace_fork(workload, cfg, golden, ccfg, fault)?;
    }

    Ok(XcheckReport {
        workload: workload.name.to_string(),
        runs_compared: batched.results.len(),
        telemetry_identical: true,
        forks_traced: sample.len(),
        prefix_commits_verified: prefix_commits,
    })
}

/// Convenience wrapper capturing the golden run itself.
pub fn run_xcheck_fresh(
    workload: &Workload,
    cfg: &MuarchConfig,
    ccfg: &CampaignConfig,
) -> Result<XcheckReport, String> {
    let golden = golden_for(workload, cfg);
    run_xcheck(workload, cfg, &golden, ccfg)
}

/// Outcome of a clean execution-tier cross-check (see [`run_xtier`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XtierReport {
    /// Workload checked.
    pub workload: String,
    /// Architectural steps proven bit-identical between the reference
    /// interpreter and the fast tier (step-by-step *and* batched `run`).
    pub interp_steps: u64,
    /// Commit records compared between the pipeline's golden trace and the
    /// fast tier.
    pub commits_compared: u64,
    /// Injected runs compared between a campaign verifying masked outcomes
    /// on the fast tier and one verifying on the reference tier.
    pub runs_compared: usize,
    /// Whether the deterministic telemetry counters were byte-identical
    /// across the two verification tiers.
    pub telemetry_identical: bool,
}

impl std::fmt::Display for XtierReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "xtier `{}`: {} interpreter steps bit-identical across tiers, {} pipeline commits \
             matched, {} campaign runs identical under either verification tier",
            self.workload, self.interp_steps, self.commits_compared, self.runs_compared
        )
    }
}

/// Proves the two execution tiers interchangeable for one workload, four
/// ways:
///
/// 1. **Substrate**: the golden capture is lockstep-verified against the
///    *reference* tier — the slow interpreter anchors the whole proof, so it
///    never delegates to the tier under test.
/// 2. **Interpreter identity**: [`avgi_refmodel::verify_fast_tier`] steps
///    the reference and fast models side by side over the whole program,
///    comparing every `RefStep`, then re-runs the fast tier's
///    block-threaded batch path and requires the same end state.
/// 3. **Pipeline identity**: the fast tier is replayed as an
///    [`avgi_muarch::ExecBackend`] against the pipeline's recorded commit
///    stream ([`avgi_muarch::TraceBackend`]); every commit's
///    `(pc, raw, ea, val)` and the final output bytes must match.
/// 4. **Campaign equality**: the same campaign runs twice with masked
///    verification enabled — once verifying on the fast tier, once on the
///    reference tier — with fresh metrics collectors; every injection
///    result and the deterministic telemetry counters must be equal.
pub fn run_xtier(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    ccfg: &CampaignConfig,
) -> Result<XtierReport, String> {
    // 1. Substrate, pinned to the reference tier.
    avgi_refmodel::verify_golden_tier(
        &workload.program,
        golden,
        avgi_refmodel::ExecTier::Reference,
    )
    .map_err(|d| format!("golden run of `{}` fails lockstep: {d}", workload.name))?;

    // 2. Reference interpreter vs fast tier, step path and batch path.
    let interp_steps = avgi_refmodel::verify_fast_tier(&workload.program, 0).map_err(|e| {
        format!(
            "`{}`: fast tier diverges from reference: {e}",
            workload.name
        )
    })?;

    // 3. Fast tier vs the pipeline's commit stream.
    let mut pipeline = avgi_muarch::TraceBackend::new(golden);
    let mut fast = avgi_refmodel::FastModel::new(&workload.program);
    let commits_compared =
        avgi_muarch::compare_backends(&mut pipeline, &mut fast, watchdog_budget(golden.cycles))
            .map_err(|e| format!("`{}`: fast tier diverges from pipeline: {e}", workload.name))?;

    // 4. Campaign equality across verification tiers.
    let fast_metrics = Arc::new(MetricsCollector::new());
    let ref_metrics = Arc::new(MetricsCollector::new());
    let mut fast_cfg = ccfg
        .clone()
        .with_observer(fast_metrics.clone())
        .with_verify_tier(avgi_refmodel::ExecTier::Fast);
    fast_cfg.verify_masked = true;
    let ref_cfg = fast_cfg
        .clone()
        .with_observer(ref_metrics.clone())
        .with_verify_tier(avgi_refmodel::ExecTier::Reference);
    let fast_run = run_campaign(workload, cfg, golden, &fast_cfg);
    let ref_run = run_campaign(workload, cfg, golden, &ref_cfg);
    compare_campaigns(("fast", &fast_run), ("reference", &ref_run))
        .map_err(|e| format!("campaign differs between verification tiers: {e}"))?;
    let ft = fast_metrics.snapshot().deterministic_counters_json();
    let rt = ref_metrics.snapshot().deterministic_counters_json();
    if ft != rt {
        return Err(format!(
            "deterministic telemetry counters differ between verification tiers:\n  fast:      \
             {ft}\n  reference: {rt}"
        ));
    }

    Ok(XtierReport {
        workload: workload.name.to_string(),
        interp_steps,
        commits_compared,
        runs_compared: fast_run.results.len(),
        telemetry_identical: true,
    })
}

/// Convenience wrapper capturing the golden run itself.
pub fn run_xtier_fresh(
    workload: &Workload,
    cfg: &MuarchConfig,
    ccfg: &CampaignConfig,
) -> Result<XtierReport, String> {
    let golden = golden_for(workload, cfg);
    run_xtier(workload, cfg, &golden, ccfg)
}

fn compare_campaigns(
    (la, a): (&str, &CampaignResult),
    (lb, b): (&str, &CampaignResult),
) -> Result<(), String> {
    if a.results.len() != b.results.len() {
        return Err(format!(
            "result counts differ: {la} {} vs {lb} {}",
            a.results.len(),
            b.results.len()
        ));
    }
    for (i, (ra, rb)) in a.results.iter().zip(&b.results).enumerate() {
        if ra != rb {
            return Err(format!("run #{i} differs:\n  {la}: {ra:?}\n  {lb}: {rb:?}"));
        }
    }
    Ok(())
}

/// Replays one fault through both execution shapes with trace recording and
/// compares every commit record, the outcome, cycles, and output bytes; the
/// fault-free prefix is lockstep-verified against the reference model.
fn trace_fork(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    ccfg: &CampaignConfig,
    fault: Fault,
) -> Result<u64, String> {
    let ctl = RunControl {
        max_cycles: watchdog_budget(golden.cycles),
        golden: Some(golden.clone()),
        record_trace: true,
        ..match ccfg.mode {
            crate::campaign::RunMode::FirstDeviation { ert_window } => RunControl {
                stop_at_first_deviation: true,
                ert_window,
                ..Default::default()
            },
            _ => RunControl::default(),
        }
    };

    // Classic shape: fresh simulator, fault pre-armed at reset.
    let mut classic = Sim::new(&workload.program, cfg.clone());
    classic.inject(fault);
    let classic_report = classic.run(&ctl);

    // Batched shape: fault-free carrier to the beginning of the injection
    // cycle, fork, arm, run.
    let mut carrier = Sim::new(&workload.program, cfg.clone());
    // The carrier records the prefix commits so the fork's stream spans the
    // whole run, exactly like the classic run's.
    let prefix_ctl = RunControl {
        max_cycles: watchdog_budget(golden.cycles),
        golden: Some(golden.clone()),
        record_trace: true,
        ..Default::default()
    };
    if let Some(out) = carrier.run_to_cycle(fault.cycle, &prefix_ctl) {
        return Err(format!(
            "carrier terminated with {out:?} before injection cycle {} of fault {fault:?}",
            fault.cycle
        ));
    }
    let mut fork = carrier.clone();
    fork.restore_from_sim(&carrier);
    fork.inject(fault);
    let fork_report = fork.run(&ctl);

    compare_reports(&classic_report, &fork_report, &fault)?;

    // Architectural check of the fault-free prefix: every commit before the
    // first deviation must be the reference instruction stream.
    let trace = fork_report.trace.as_ref().expect("record_trace set");
    let prefix = fork_report
        .first_deviation
        .map_or(trace.len(), |d| d.index as usize);
    avgi_refmodel::verify_trace_prefix(&workload.program, trace, prefix)
        .map_err(|d| format!("fault {fault:?}: fault-free prefix fails lockstep: {d}"))
}

fn compare_reports(classic: &RunReport, fork: &RunReport, fault: &Fault) -> Result<(), String> {
    if classic.outcome != fork.outcome {
        return Err(format!(
            "fault {fault:?}: outcome differs — classic {:?}, fork {:?}",
            classic.outcome, fork.outcome
        ));
    }
    if classic.cycles != fork.cycles {
        return Err(format!(
            "fault {fault:?}: cycle count differs — classic {}, fork {}",
            classic.cycles, fork.cycles
        ));
    }
    if classic.first_deviation != fork.first_deviation {
        return Err(format!(
            "fault {fault:?}: first deviation differs — classic {:?}, fork {:?}",
            classic.first_deviation, fork.first_deviation
        ));
    }
    if classic.output != fork.output {
        return Err(format!("fault {fault:?}: output bytes differ"));
    }
    let (ct, ft) = (
        classic.trace.as_ref().expect("record_trace set"),
        fork.trace.as_ref().expect("record_trace set"),
    );
    if ct.len() != ft.len() {
        return Err(format!(
            "fault {fault:?}: commit stream lengths differ — classic {}, fork {}",
            ct.len(),
            ft.len()
        ));
    }
    for (i, (c, f)) in ct.iter().zip(ft).enumerate() {
        if c != f {
            return Err(format!(
                "fault {fault:?}: commit #{i} differs (cycle included) — classic {c:?}, fork {f:?}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::RunMode;
    use avgi_muarch::fault::Structure;

    #[test]
    fn xcheck_passes_on_a_clean_campaign() {
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let ccfg = CampaignConfig::new(
            Structure::RegFile,
            24,
            RunMode::FirstDeviation {
                ert_window: Some(2_000),
            },
        );
        let report = run_xcheck_fresh(&w, &cfg, &ccfg).expect("clean campaign must cross-check");
        assert_eq!(report.runs_compared, 24);
        assert!(report.telemetry_identical);
        assert!(report.forks_traced > 0);
        assert!(report.prefix_commits_verified > 0);
    }

    #[test]
    fn xtier_passes_on_a_clean_campaign() {
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let ccfg = CampaignConfig::new(
            Structure::RegFile,
            24,
            RunMode::FirstDeviation {
                ert_window: Some(2_000),
            },
        );
        let report = run_xtier_fresh(&w, &cfg, &ccfg).expect("tiers must be interchangeable");
        assert_eq!(report.runs_compared, 24);
        assert!(report.interp_steps > 0);
        assert!(report.commits_compared > 0);
        assert!(report.telemetry_identical);
    }

    #[test]
    fn xcheck_rejects_unbatched_configs() {
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let ccfg = CampaignConfig::new(Structure::RegFile, 4, RunMode::EndToEnd).with_batch(1);
        assert!(run_xcheck_fresh(&w, &cfg, &ccfg).is_err());
    }
}
