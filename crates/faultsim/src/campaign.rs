//! Fault-injection campaigns: one golden capture plus N injected runs,
//! executed across worker threads.
//!
//! The engine is fault-tolerant: a panicking simulator run is isolated with
//! [`std::panic::catch_unwind`], retried once without its checkpoint, and —
//! if it still fails — recorded as [`RunOutcome::SimAbort`] instead of
//! poisoning the whole campaign; an optional per-run wall-clock budget turns
//! runaway runs into [`RunOutcome::WallClockExpired`]. A campaign therefore
//! always yields exactly N classified results. Campaigns can additionally
//! stream results to an on-disk [journal](crate::journal) and resume
//! bit-identically after an interruption ([`run_campaign_journaled`]).

use crate::error::CampaignError;
use crate::journal::{CampaignKey, Journal};
use crate::sampling::{multi_bit_burst, sample_faults};
use crate::telemetry::{CampaignObserver, NullObserver};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::{Fault, Structure};
use avgi_muarch::pipeline::{capture_golden, Sim, Snapshot};
use avgi_muarch::program::Program;
use avgi_muarch::run::{RunControl, RunOutcome, RunReport};
use avgi_muarch::trace::{Deviation, GoldenRun};
use avgi_refmodel::ExecTier;
use avgi_workloads::Workload;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

/// How far each injected run simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Traditional (accelerated) SFI: simulate to the end of the program and
    /// classify the final effect. Pre-injection cycles are skipped by
    /// checkpointing in both flows (§IV.B), so cost is counted post-injection.
    EndToEnd,
    /// Like [`RunMode::EndToEnd`], but additionally records the first
    /// commit-trace deviation — the instrumented runs behind the paper's
    /// §III joint HVF/AVF analysis (and behind weight learning).
    Instrumented,
    /// The AVGI production mode (insights 1–3): stop at the first deviation,
    /// or `ert_window` cycles after injection if nothing deviated.
    FirstDeviation {
        /// Effective-residency-time stop window (`None` disables insight 3).
        ert_window: Option<u64>,
    },
}

/// Campaign parameters.
#[derive(Clone)]
pub struct CampaignConfig {
    /// Target structure.
    pub structure: Structure,
    /// Number of injections.
    pub faults: usize,
    /// RNG seed for fault sampling.
    pub seed: u64,
    /// Run mode.
    pub mode: RunMode,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Spatial multi-bit burst width (`1` = single-bit, the default model).
    pub burst_width: u32,
    /// Number of pre-injection checkpoints (`0` disables checkpointing).
    ///
    /// Checkpointing skips the fault-free pre-injection period by resuming
    /// each injected run from the latest snapshot at or before its
    /// injection cycle — the standard acceleration the paper assumes in
    /// *both* the traditional and the AVGI flow (§IV.B). Results are
    /// bit-identical with and without it.
    pub checkpoints: u32,
    /// Per-run wall-clock budget (`None` = unlimited, the default).
    ///
    /// A run that exceeds the budget ends with
    /// [`RunOutcome::WallClockExpired`], which classifies like a watchdog
    /// crash. The clock is polled every
    /// [`avgi_muarch::run::WALL_CHECK_CYCLES`] simulated cycles. Note that a
    /// wall-clock limit is inherently host-speed-dependent: campaigns using
    /// it are *not* guaranteed reproducible run-to-run, which is why the
    /// default leaves it off.
    pub wall_budget: Option<Duration>,
    /// Telemetry observer driven by the engine (`None` = unobserved).
    ///
    /// The observer sees every run — fresh, retried, or replayed from a
    /// journal — see [`CampaignObserver`] for the hook contract. Observation
    /// never changes campaign results; it is excluded from [`fmt::Debug`]
    /// output so journal keys and config hashes are unaffected.
    pub observer: Option<Arc<dyn CampaignObserver>>,
    /// Maximum number of runs executed as one shared-prefix batch
    /// (`<= 1` disables batching).
    ///
    /// Consecutive runs (in injection-cycle order) that resume from the same
    /// checkpoint are grouped: one fault-free *carrier* simulator advances
    /// through the golden prefix once, and each injected run forks off it at
    /// its injection cycle via [`Sim::restore_from_sim`] — the prefix between
    /// the checkpoint and the injection cycle is simulated once per batch
    /// instead of once per run (the ZOFI observation, applied
    /// per-checkpoint). Results are bit-identical with and without batching;
    /// like `checkpoints`, the knob only moves cost. Batching is skipped when
    /// checkpointing is disabled or a wall-clock budget is set (the budget is
    /// accounted per whole run, which a shared prefix cannot attribute).
    ///
    /// Excluded from the [`fmt::Debug`] identity (journal keys and config
    /// hashes), so journals written at any batch size resume interchangeably.
    pub batch: usize,
    /// Debug-assert mode: differentially verify Masked classifications
    /// against the `avgi-refmodel` architectural reference model.
    ///
    /// When set, the golden run is lockstep-checked against an independent
    /// reference execution before any fault is injected (panicking if the
    /// simulation substrate itself is architecturally wrong), and every
    /// completed injected run whose output matches the golden output — i.e.
    /// every run the campaign classifies Masked — is re-checked against the
    /// reference model's own output bytes. Any violation panics *after* the
    /// engine drains, with the offending faults listed: a violation means
    /// classifications cannot be trusted, not that one run misbehaved.
    ///
    /// Verification never changes campaign results; like `observer` it is
    /// excluded from [`fmt::Debug`] output so journal keys and config
    /// hashes are unaffected.
    pub verify_masked: bool,
    /// Which architectural execution tier runs the fault-free verification
    /// work ([`verify_masked`](CampaignConfig::verify_masked) golden
    /// lockstep + reference re-execution). Defaults to [`ExecTier::Fast`],
    /// the pre-decoded interpreter; [`ExecTier::Reference`] selects the
    /// step-at-a-time oracle. The tiers are bit-identical (the `--xtier`
    /// cross-check proves it per campaign), so like `observer` and
    /// `verify_masked` the knob never changes campaign results and is
    /// excluded from [`fmt::Debug`] output.
    pub verify_tier: ExecTier,
}

impl std::fmt::Debug for CampaignConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Matches the previously derived output (the observer and the
        // verify_masked debug mode are deliberately omitted: they carry no
        // campaign identity).
        f.debug_struct("CampaignConfig")
            .field("structure", &self.structure)
            .field("faults", &self.faults)
            .field("seed", &self.seed)
            .field("mode", &self.mode)
            .field("threads", &self.threads)
            .field("burst_width", &self.burst_width)
            .field("checkpoints", &self.checkpoints)
            .field("wall_budget", &self.wall_budget)
            .finish()
    }
}

impl CampaignConfig {
    /// Single-bit campaign with `faults` injections in the given mode.
    pub fn new(structure: Structure, faults: usize, mode: RunMode) -> Self {
        CampaignConfig {
            structure,
            faults,
            seed: 0xAE61_0001,
            mode,
            threads: 0,
            burst_width: 1,
            checkpoints: 8,
            wall_budget: None,
            batch: 32,
            observer: None,
            verify_masked: false,
            verify_tier: ExecTier::Fast,
        }
    }

    /// Sets the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the multi-bit burst width.
    pub fn with_burst(mut self, width: u32) -> Self {
        self.burst_width = width.max(1);
        self
    }

    /// Sets the checkpoint count (`0` disables checkpointing).
    pub fn with_checkpoints(mut self, count: u32) -> Self {
        self.checkpoints = count;
        self
    }

    /// Sets the per-run wall-clock budget.
    pub fn with_wall_budget(mut self, budget: Duration) -> Self {
        self.wall_budget = Some(budget);
        self
    }

    /// Sets the shared-prefix batch size (`<= 1` disables batching).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Attaches a telemetry observer (e.g. a
    /// [`MetricsCollector`](crate::telemetry::MetricsCollector) or
    /// [`ProgressObserver`](crate::telemetry::ProgressObserver)).
    pub fn with_observer(mut self, observer: Arc<dyn CampaignObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Enables reference-model verification of Masked classifications (see
    /// [`CampaignConfig::verify_masked`]).
    pub fn with_masked_verification(mut self) -> Self {
        self.verify_masked = true;
        self
    }

    /// Selects the architectural tier for fault-free verification work (see
    /// [`CampaignConfig::verify_tier`]).
    pub fn with_verify_tier(mut self, tier: ExecTier) -> Self {
        self.verify_tier = tier;
        self
    }

    /// The resolved worker-thread count: `threads`, with the configured `0`
    /// standing for all available cores. This is the single source of truth
    /// for the pool size — both the engine's spawn count and the
    /// worker-count figure reported through telemetry derive from it, so
    /// metrics never echo the raw `0`.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }
}

/// Mid-run simulator snapshots for skipping the pre-injection period.
///
/// Snapshots are taken at evenly spaced cycles of the fault-free prefix;
/// a faulty run resumes from the latest snapshot at or before its injection
/// cycle and produces exactly the results of an uninterrupted run. Workers
/// reuse one scratch [`Sim`] per thread and rewind it with
/// [`Sim::restore_from`], so per-run setup is O(dirty state) rather than a
/// full machine copy.
#[derive(Debug, Clone)]
pub struct CheckpointSet {
    cycles: Vec<u64>,
    snaps: Vec<Snapshot>,
}

impl CheckpointSet {
    /// Builds `count` snapshots (cycle 0 plus `count - 1` evenly spaced
    /// points of the golden execution).
    ///
    /// Fails with [`CampaignError::CheckpointPrefixEnded`] if the fault-free
    /// prefix terminates before a snapshot point (a sign of a golden run
    /// captured under a different configuration); [`run_campaign`] degrades
    /// to checkpoint-free execution when it hits this.
    pub fn build(
        workload: &Workload,
        cfg: &MuarchConfig,
        golden: &Arc<GoldenRun>,
        count: u32,
    ) -> Result<Self, CampaignError> {
        let ctl = RunControl {
            max_cycles: watchdog(golden.cycles),
            golden: Some(golden.clone()),
            ..Default::default()
        };
        let mut sim = Sim::new(&workload.program, cfg.clone());
        let mut cycles = Vec::with_capacity(count.max(1) as usize);
        let mut snaps = Vec::with_capacity(count.max(1) as usize);
        cycles.push(0);
        snaps.push(sim.snapshot());
        for k in 1..count.max(1) {
            let target = golden.cycles * u64::from(k) / u64::from(count);
            if let Some(outcome) = sim.run_to_cycle(target, &ctl) {
                return Err(CampaignError::CheckpointPrefixEnded {
                    outcome,
                    at_cycle: sim.cycle(),
                    target,
                });
            }
            cycles.push(target);
            snaps.push(sim.snapshot());
        }
        Ok(CheckpointSet { cycles, snaps })
    }

    /// The latest snapshot at or before `cycle`, ready to spawn or rewind a
    /// scratch simulator.
    pub fn nearest(&self, cycle: u64) -> &Snapshot {
        &self.snaps[self.nearest_index(cycle)]
    }

    /// Index of the latest snapshot at or before `cycle` — the batching key:
    /// runs sharing an index can share one fault-free carrier.
    pub fn nearest_index(&self, cycle: u64) -> usize {
        match self.cycles.binary_search(&cycle) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// The snapshot at `index` (panics if out of range).
    pub fn snapshot(&self, index: usize) -> &Snapshot {
        &self.snaps[index]
    }

    /// Number of snapshots held.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// Whether the set holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }
}

/// The observables of one injected run.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionResult {
    /// The injected fault (first bit of the burst for multi-bit runs).
    pub fault: Fault,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// First commit-trace deviation, if any.
    pub deviation: Option<Deviation>,
    /// For completed runs: did the output match the golden output?
    pub output_matches: Option<bool>,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Simulated cycles after injection (the cost metric of Table II).
    pub post_inject_cycles: u64,
    /// For [`RunOutcome::SimAbort`] runs: the (truncated) panic message of
    /// the simulator failure that was isolated.
    pub abort_message: Option<String>,
}

/// A finished campaign: the golden reference plus every injection result.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Workload name.
    pub workload: String,
    /// Target structure.
    pub structure: Structure,
    /// Run mode used.
    pub mode: RunMode,
    /// Fault-free execution length.
    pub golden_cycles: u64,
    /// Per-injection observables, in sampling order.
    pub results: Vec<InjectionResult>,
    /// Non-fatal degradations the engine worked around (e.g. checkpoint
    /// construction failing and the campaign falling back to fresh runs).
    pub warnings: Vec<String>,
}

impl CampaignResult {
    /// Sum of post-injection cycles across all runs — the campaign's
    /// simulation cost in the paper's accounting.
    pub fn total_post_inject_cycles(&self) -> u64 {
        self.results.iter().map(|r| r.post_inject_cycles).sum()
    }

    /// Number of injections.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the campaign is empty.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Number of runs whose simulator panicked (isolated and recorded as
    /// [`RunOutcome::SimAbort`]).
    pub fn aborted_count(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.outcome == RunOutcome::SimAbort)
            .count()
    }

    /// Fraction of runs recorded as [`RunOutcome::SimAbort`] — the
    /// per-structure abort rate of this campaign (0 for empty campaigns).
    pub fn abort_rate(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.aborted_count() as f64 / self.results.len() as f64
        }
    }

    /// Number of runs that exceeded the per-run wall-clock budget.
    pub fn wall_expired_count(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.outcome == RunOutcome::WallClockExpired)
            .count()
    }
}

/// Captures the golden run for a workload (convenience wrapper with the
/// standard watchdog).
pub fn golden_for(workload: &Workload, cfg: &MuarchConfig) -> Arc<GoldenRun> {
    capture_golden(&workload.program, cfg, 50_000_000)
}

/// Cycle budget an injected run gets before it is declared hung: twice the
/// golden duration plus slack for short runs. Saturating — an adversarially
/// long golden run must clamp to `u64::MAX`, not wrap around to a tiny
/// budget that would misclassify every run as a hang.
pub fn watchdog_budget(golden_cycles: u64) -> u64 {
    golden_cycles.saturating_mul(2).saturating_add(20_000)
}

fn watchdog(golden_cycles: u64) -> u64 {
    watchdog_budget(golden_cycles)
}

/// Architectural oracle backing [`CampaignConfig::verify_masked`].
///
/// Built once per campaign: construction runs the workload on the
/// `avgi-refmodel` interpreter of the configured
/// [`verify_tier`](CampaignConfig::verify_tier) — the pre-decoded fast tier
/// by default — and lockstep-verifies the golden pipeline capture against
/// it, panicking immediately on any divergence —
/// if the fault-free substrate is architecturally wrong, every
/// classification derived from it is garbage.
///
/// Per-run checks only *record* violations (engine workers run inside
/// `catch_unwind`, where a panic would be silently folded into a
/// [`RunOutcome::SimAbort`]); [`MaskedOracle::assert_clean`] panics with the
/// collected list after the engine drains.
struct MaskedOracle {
    /// Output bytes of the independent reference execution.
    expected: Vec<u8>,
    /// The program, kept for post-ERT tail completion.
    program: Program,
    /// Pre-decoded block cache shared by every tail completion — built once
    /// per campaign, like the fast tier's other consumers.
    cache: Arc<avgi_refmodel::BlockCache>,
    violations: Mutex<Vec<String>>,
}

impl MaskedOracle {
    fn new(workload: &Workload, golden: &Arc<GoldenRun>, tier: ExecTier) -> Self {
        if let Err(d) = avgi_refmodel::verify_golden_tier(&workload.program, golden, tier) {
            panic!(
                "verify_masked: golden run of `{}` fails architectural lockstep:\n{d}",
                workload.name
            );
        }
        let (model, run) = avgi_refmodel::reference_run_tier(&workload.program, tier, 0);
        assert_eq!(
            run.outcome,
            Some(avgi_refmodel::RefOutcome::Completed),
            "verify_masked: reference model did not complete `{}`",
            workload.name
        );
        MaskedOracle {
            expected: model.output(),
            program: workload.program.clone(),
            cache: Arc::new(avgi_refmodel::BlockCache::build(&workload.program)),
            violations: Mutex::new(Vec::new()),
        }
    }

    /// Re-check a completed injected run: a run whose output matches the
    /// golden output (and will therefore classify Masked) must also match
    /// the reference model's independently computed bytes.
    fn check_completed(&self, fault: &Fault, output: &[u8], golden_output: &[u8]) {
        if output == golden_output && output != self.expected {
            self.violations.lock().unwrap().push(format!(
                "fault {fault:?}: output matches golden but not the reference model"
            ));
        }
    }

    /// Re-check an `ErtExpired` run: the window elapsed with no deviation,
    /// so the run will classify Benign on the strength of its deviation-free
    /// commit prefix. Completing that prefix's *architectural tail* on the
    /// fast tier (the commits the ERT stop skipped) must reach `Completed`
    /// with the reference output — otherwise the committed count and the
    /// no-deviation claim are inconsistent with the architectural program.
    /// This validates the classification's internal consistency, not the
    /// ERT approximation itself (a latent fault past its residency is
    /// Benign by the paper's §V.A definition).
    fn check_ert_expired(&self, fault: &Fault, report: &RunReport) {
        if report.first_deviation.is_some() {
            return; // deviated runs are classified by the deviation, not ERT
        }
        let mut tail = avgi_refmodel::FastModel::with_cache(&self.program, self.cache.clone());
        let prefix = tail.run(report.stats.committed);
        if prefix.outcome.is_some() || prefix.steps != report.stats.committed {
            self.violations.lock().unwrap().push(format!(
                "fault {fault:?}: ERT stop after {} commits, but the reference program ends \
                 ({:?}) at step {}",
                report.stats.committed, prefix.outcome, prefix.steps
            ));
            return;
        }
        let end = tail.run(avgi_refmodel::DEFAULT_MAX_STEPS);
        if end.outcome != Some(avgi_refmodel::RefOutcome::Completed)
            || tail.output() != self.expected
        {
            self.violations.lock().unwrap().push(format!(
                "fault {fault:?}: post-ERT architectural tail does not complete with the \
                 reference output (outcome {:?} after {} steps)",
                end.outcome, end.steps
            ));
        }
    }

    fn assert_clean(&self, workload: &Workload) {
        let violations = self.violations.lock().unwrap();
        assert!(
            violations.is_empty(),
            "verify_masked: {} run(s) of `{}` classified Masked are not architecturally \
             equivalent to the reference execution:\n{}",
            violations.len(),
            workload.name,
            violations.join("\n")
        );
    }
}

/// Executes one injected run.
pub fn run_one(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    fault: Fault,
    mode: RunMode,
    burst_width: u32,
) -> InjectionResult {
    run_one_inner(
        workload,
        cfg,
        golden,
        fault,
        mode,
        burst_width,
        None,
        &mut None,
        None,
        None,
    )
}

/// Executes one injected run, resuming from a checkpoint when one is
/// available at or before the injection cycle.
pub fn run_one_from(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    fault: Fault,
    mode: RunMode,
    burst_width: u32,
    checkpoints: &CheckpointSet,
) -> InjectionResult {
    run_one_inner(
        workload,
        cfg,
        golden,
        fault,
        mode,
        burst_width,
        None,
        &mut None,
        Some(checkpoints),
        None,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_one_inner(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    fault: Fault,
    mode: RunMode,
    burst_width: u32,
    wall_budget: Option<Duration>,
    scratch: &mut Option<Sim>,
    checkpoints: Option<&CheckpointSet>,
    oracle: Option<&MaskedOracle>,
) -> InjectionResult {
    // Checkpointed runs reuse the caller's scratch simulator, rewinding it
    // in place (O(dirty state), allocation-free after the first run) instead
    // of cloning a full machine image per injection.
    let mut fresh;
    let sim: &mut Sim = match checkpoints {
        Some(set) => {
            let snap = set.nearest(fault.cycle);
            let had = scratch.is_some();
            let s = scratch.get_or_insert_with(|| snap.spawn());
            if had {
                s.restore_from(snap);
            }
            s
        }
        None => {
            fresh = Sim::new(&workload.program, cfg.clone());
            &mut fresh
        }
    };
    inject_burst(sim, fault, burst_width, cfg);
    let ctl = control_for(mode, golden, wall_budget);
    let report = sim.run(&ctl);
    if let Some(oracle) = oracle {
        if let Some(output) = report.output.as_ref() {
            oracle.check_completed(&fault, output, &golden.output);
        }
        if report.outcome == RunOutcome::ErtExpired {
            oracle.check_ert_expired(&fault, &report);
        }
    }
    InjectionResult {
        fault,
        outcome: report.outcome,
        deviation: report.first_deviation,
        output_matches: report.output.as_ref().map(|o| *o == golden.output),
        cycles: report.cycles,
        post_inject_cycles: report.post_inject_cycles(),
        abort_message: None,
    }
}

/// Arms `fault` (or its spatial burst) on a simulator.
fn inject_burst(sim: &mut Sim, fault: Fault, burst_width: u32, cfg: &MuarchConfig) {
    if burst_width <= 1 {
        // The identity burst must not clamp the sampled bit: an ill-formed
        // bit index should fail loudly in the simulator (and be isolated by
        // the engine), not be silently remapped to a different site.
        sim.inject(fault);
    } else {
        for f in multi_bit_burst(fault, burst_width, cfg) {
            sim.inject(f);
        }
    }
}

/// The run control a mode prescribes — used identically by whole injected
/// runs and by the fault-free carrier advance of the batched engine, so a
/// forked run's state evolution cannot differ from an unbatched run's.
fn control_for(
    mode: RunMode,
    golden: &Arc<GoldenRun>,
    wall_budget: Option<Duration>,
) -> RunControl {
    match mode {
        RunMode::EndToEnd | RunMode::Instrumented => RunControl {
            max_cycles: watchdog(golden.cycles),
            golden: Some(golden.clone()),
            wall_budget,
            ..Default::default()
        },
        RunMode::FirstDeviation { ert_window } => RunControl {
            max_cycles: watchdog(golden.cycles),
            golden: Some(golden.clone()),
            stop_at_first_deviation: true,
            ert_window,
            wall_budget,
            ..Default::default()
        },
    }
}

thread_local! {
    /// Set while this thread executes an isolated run, so the process-wide
    /// panic hook can suppress the default backtrace spew for panics the
    /// engine catches and records anyway.
    static IN_ISOLATED_RUN: Cell<bool> = const { Cell::new(false) };
}

static QUIET_HOOK: Once = Once::new();

fn install_quiet_panic_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_ISOLATED_RUN.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Extracts a human-readable message from a caught panic payload, truncated
/// to a bounded length so a pathological payload cannot bloat results or
/// journals.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    const MAX: usize = 200;
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    if msg.chars().count() > MAX {
        let truncated: String = msg.chars().take(MAX).collect();
        format!("{truncated}…")
    } else {
        msg
    }
}

/// Executes one injected run behind a panic boundary.
///
/// A panicking run is retried once *without* its checkpoint (a corrupt or
/// mismatched snapshot is the most likely infrastructure cause); if the
/// retry also panics — or checkpointing was not in use — the run is
/// recorded as [`RunOutcome::SimAbort`] carrying the panic message. The
/// decision depends only on this run's own behaviour, so results stay
/// deterministic and thread-count-independent. A panic also discards the
/// worker's scratch simulator: it may have been torn mid-restore, and the
/// next run re-spawns a clean one from its checkpoint.
#[allow(clippy::too_many_arguments)]
fn run_one_isolated(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    fault: Fault,
    mode: RunMode,
    burst_width: u32,
    wall_budget: Option<Duration>,
    scratch: &mut Option<Sim>,
    checkpoints: Option<&CheckpointSet>,
    structure: Structure,
    observer: &dyn CampaignObserver,
    oracle: Option<&MaskedOracle>,
) -> InjectionResult {
    install_quiet_panic_hook();
    let attempt = |ckpt: Option<&CheckpointSet>, scratch: &mut Option<Sim>| {
        IN_ISOLATED_RUN.with(|f| f.set(true));
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_one_inner(
                workload,
                cfg,
                golden,
                fault,
                mode,
                burst_width,
                wall_budget,
                scratch,
                ckpt,
                oracle,
            )
        }));
        IN_ISOLATED_RUN.with(|f| f.set(false));
        r
    };
    let payload = match attempt(checkpoints, scratch) {
        Ok(r) => return r,
        Err(p) => {
            *scratch = None;
            p
        }
    };
    let payload = if checkpoints.is_some() {
        // Graceful degradation: retry once from a fresh simulator.
        observer.on_retry(structure);
        match attempt(None, &mut None) {
            Ok(r) => return r,
            Err(p) => p,
        }
    } else {
        payload
    };
    InjectionResult {
        fault,
        outcome: RunOutcome::SimAbort,
        deviation: None,
        output_matches: None,
        cycles: 0,
        post_inject_cycles: 0,
        abort_message: Some(panic_message(payload.as_ref())),
    }
}

/// Per-worker simulators of the batched engine, kept across batches so the
/// carrier stays on the journaled-restore fast path while consecutive
/// batches share a checkpoint.
#[derive(Default)]
struct BatchWorker {
    /// Fault-free simulator advanced through the golden prefix.
    carrier: Option<Sim>,
    /// Reusable fork target, rewound to the carrier per run.
    fork: Option<Sim>,
    /// Scratch for the non-batched fallback path (`run_one_isolated`).
    scratch: Option<Sim>,
}

/// Executes one shared-prefix batch: all faults resume from `snap`, sorted
/// ascending by injection cycle.
///
/// The carrier advances fault-free from the checkpoint; each run forks off
/// it at the *beginning* of its injection cycle, arms its fault, and runs to
/// its own end. [`Sim::step`] applies pending faults at the start of the
/// cycle they name, so a fork positioned at the beginning of `fault.cycle`
/// with the fault newly armed is state-identical to an unbatched scratch
/// that restored at the checkpoint, armed the same fault, and simulated
/// forward — the intervening cycles are fault-free in both, and the carrier
/// advances under the exact [`control_for`] the unbatched run would use.
/// Any panic (or a carrier that terminates before an injection cycle, which
/// a valid golden run cannot cause) drops the batch simulators and falls
/// back to [`run_one_isolated`] per remaining run, preserving the unbatched
/// engine's retry/abort semantics exactly.
#[allow(clippy::too_many_arguments)]
fn run_shared_prefix_batch(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    ccfg: &CampaignConfig,
    batch: &[(usize, Fault)],
    snap: &Snapshot,
    worker: &mut BatchWorker,
    checkpoints: &CheckpointSet,
    observer: &dyn CampaignObserver,
    oracle: Option<&MaskedOracle>,
) -> Vec<(usize, InjectionResult, Duration)> {
    install_quiet_panic_hook();
    let prefix_ctl = control_for(ccfg.mode, golden, None);
    let guarded = |f: &mut dyn FnMut() -> Option<InjectionResult>| {
        IN_ISOLATED_RUN.with(|flag| flag.set(true));
        let r = catch_unwind(AssertUnwindSafe(f));
        IN_ISOLATED_RUN.with(|flag| flag.set(false));
        r
    };

    // Position the carrier at the batch's checkpoint (journaled restore when
    // the previous batch used the same snapshot).
    let mut carrier_ok = {
        let carrier = &mut worker.carrier;
        guarded(&mut || {
            let had = carrier.is_some();
            let c = carrier.get_or_insert_with(|| snap.spawn());
            if had {
                c.restore_from(snap);
            }
            None
        })
        .is_ok()
    };
    if !carrier_ok {
        worker.carrier = None;
    }

    let mut out = Vec::with_capacity(batch.len());
    for &(index, fault) in batch {
        let t0 = Instant::now();
        let mut batched: Option<InjectionResult> = None;
        if carrier_ok {
            let carrier = worker.carrier.as_mut().expect("carrier_ok implies carrier");
            let fork = &mut worker.fork;
            let attempt = guarded(&mut || {
                if carrier.run_to_cycle(fault.cycle, &prefix_ctl).is_some() {
                    return None; // carrier ended before the injection cycle
                }
                let had = fork.is_some();
                let f = fork.get_or_insert_with(|| carrier.clone());
                if had {
                    f.restore_from_sim(carrier);
                }
                inject_burst(f, fault, ccfg.burst_width, cfg);
                let report = f.run(&control_for(ccfg.mode, golden, ccfg.wall_budget));
                if let Some(oracle) = oracle {
                    if let Some(output) = report.output.as_ref() {
                        oracle.check_completed(&fault, output, &golden.output);
                    }
                    if report.outcome == RunOutcome::ErtExpired {
                        oracle.check_ert_expired(&fault, &report);
                    }
                }
                Some(InjectionResult {
                    fault,
                    outcome: report.outcome,
                    deviation: report.first_deviation,
                    output_matches: report.output.as_ref().map(|o| *o == golden.output),
                    cycles: report.cycles,
                    post_inject_cycles: report.post_inject_cycles(),
                    abort_message: None,
                })
            });
            match attempt {
                Ok(Some(r)) => batched = Some(r),
                Ok(None) => carrier_ok = false,
                Err(_) => {
                    // The panic may have torn either simulator mid-update;
                    // drop both and finish the batch on the fallback path
                    // (which re-attempts this fault and owns the retry/abort
                    // decision, exactly as the unbatched engine would).
                    worker.carrier = None;
                    worker.fork = None;
                    carrier_ok = false;
                }
            }
        }
        let r = batched.unwrap_or_else(|| {
            run_one_isolated(
                workload,
                cfg,
                golden,
                fault,
                ccfg.mode,
                ccfg.burst_width,
                ccfg.wall_budget,
                &mut worker.scratch,
                Some(checkpoints),
                ccfg.structure,
                observer,
                oracle,
            )
        });
        out.push((index, r, t0.elapsed()));
    }
    out
}

/// Runs a full campaign for one (workload, structure) pair.
///
/// Fault sampling is deterministic in `ccfg.seed`; execution is parallel
/// but the result order matches the sampling order, so campaigns are
/// reproducible run-to-run regardless of thread count (unless a wall-clock
/// budget is set). Individual simulator failures are isolated and recorded
/// as [`RunOutcome::SimAbort`], so the campaign always returns exactly
/// `ccfg.faults` results.
pub fn run_campaign(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    ccfg: &CampaignConfig,
) -> CampaignResult {
    let faults = sample_faults(ccfg.structure, cfg, golden.cycles, ccfg.faults, ccfg.seed)
        .expect("run_campaign: cannot sample faults from this golden run");
    run_campaign_with_faults(workload, cfg, golden, ccfg, &faults)
}

/// Like [`run_campaign`], but injecting an explicit fault list instead of
/// sampling one from `ccfg.seed` (`ccfg.faults` is ignored). Useful for
/// replaying specific faults — including ill-formed ones, which exercise the
/// engine's panic isolation rather than crashing the campaign.
pub fn run_campaign_with_faults(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    ccfg: &CampaignConfig,
    faults: &[Fault],
) -> CampaignResult {
    let (checkpoints, mut warnings) = build_checkpoints(workload, cfg, golden, ccfg);
    let (results, engine_warnings) = run_campaign_engine(
        workload,
        cfg,
        golden,
        ccfg,
        faults,
        BTreeMap::new(),
        None,
        0,
        checkpoints.as_ref(),
    )
    .expect("journal-free campaign cannot fail");
    warnings.extend(engine_warnings);
    CampaignResult {
        workload: workload.name.to_string(),
        structure: ccfg.structure,
        mode: ccfg.mode,
        golden_cycles: golden.cycles,
        results,
        warnings,
    }
}

/// Runs a campaign journaled to `path`, resuming any results already on
/// disk.
///
/// Each completed run is appended to the journal as one flushed JSON line,
/// so an interrupted campaign loses at most its in-flight runs. Re-invoking
/// with the same arguments and path resumes: already-journaled results are
/// loaded (tolerating a torn tail), only the missing runs execute, and the
/// returned [`CampaignResult`] is bit-identical to an uninterrupted run. A
/// journal written by a different campaign (workload, structure, seed, mode,
/// burst, fault count, golden length, or microarchitecture config differ) is
/// rejected with [`CampaignError::JournalMismatch`].
pub fn run_campaign_journaled(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    ccfg: &CampaignConfig,
    path: &Path,
) -> Result<CampaignResult, CampaignError> {
    let faults = sample_faults(ccfg.structure, cfg, golden.cycles, ccfg.faults, ccfg.seed)?;
    let key = CampaignKey::new(workload.name, cfg, golden.cycles, ccfg);
    let (journal, done) = Journal::open(path, &key)?;
    // The key already pins the sampling inputs, so journaled faults must
    // match the freshly sampled list; a mismatch means the journal is
    // corrupt in a way the header check could not see.
    for (&i, r) in &done {
        if r.fault != faults[i] {
            return Err(CampaignError::JournalMismatch {
                field: "fault",
                expected: format!("{:?}", faults[i]),
                found: format!("{:?}", r.fault),
            });
        }
    }
    let journal = Mutex::new(journal);
    let (checkpoints, mut warnings) = build_checkpoints(workload, cfg, golden, ccfg);
    let (results, engine_warnings) = run_campaign_engine(
        workload,
        cfg,
        golden,
        ccfg,
        &faults,
        done,
        Some(&journal),
        0,
        checkpoints.as_ref(),
    )?;
    warnings.extend(engine_warnings);
    Ok(CampaignResult {
        workload: workload.name.to_string(),
        structure: ccfg.structure,
        mode: ccfg.mode,
        golden_cycles: golden.cycles,
        results,
        warnings,
    })
}

/// A reusable shard executor: the unit of work distribution behind
/// `avgi-grid` and the offline `--shard I/N` mode.
///
/// Construction performs the per-campaign setup exactly once — the full
/// fault list is sampled from `ccfg.seed` and the checkpoint set is built —
/// and [`run_indices`](ShardRunner::run_indices) then executes any subset
/// of that list through the same engine as [`run_campaign`]. Because each
/// injected run is deterministic and independent, the results of a
/// partition of `0..ccfg.faults` concatenated in index order are
/// bit-identical to the unsharded campaign's, regardless of how the
/// indices are split across runners, processes, or machines.
pub struct ShardRunner {
    workload: Workload,
    cfg: MuarchConfig,
    golden: Arc<GoldenRun>,
    ccfg: CampaignConfig,
    faults: Vec<Fault>,
    checkpoints: Option<CheckpointSet>,
    warnings: Vec<String>,
}

impl ShardRunner {
    /// Samples the campaign's fault list and builds its checkpoint set.
    ///
    /// The runner owns copies of the workload and configuration (both are
    /// cheap to clone next to the checkpoint set), so a long-lived worker
    /// can cache one runner per tenant campaign without borrowing from
    /// anything. Any observer already attached to `ccfg` is kept as the
    /// default for [`run_indices`](ShardRunner::run_indices) calls that do
    /// not supply their own.
    pub fn new(
        workload: &Workload,
        cfg: &MuarchConfig,
        golden: &Arc<GoldenRun>,
        ccfg: &CampaignConfig,
    ) -> Self {
        let faults = sample_faults(ccfg.structure, cfg, golden.cycles, ccfg.faults, ccfg.seed)
            .expect("ShardRunner: cannot sample faults from this golden run");
        let (checkpoints, warnings) = build_checkpoints(workload, cfg, golden, ccfg);
        ShardRunner {
            workload: workload.clone(),
            cfg: cfg.clone(),
            golden: golden.clone(),
            ccfg: ccfg.clone(),
            faults,
            checkpoints,
            warnings,
        }
    }

    /// The full sampled fault list (index space shared by every shard).
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Setup degradations (e.g. checkpointing disabled).
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// The golden run the shards replay against.
    pub fn golden(&self) -> &Arc<GoldenRun> {
        &self.golden
    }

    /// Executes the faults at `indices` (any order, duplicates allowed) and
    /// returns `(index, result)` pairs in the order given.
    ///
    /// `observer` overrides the campaign config's observer for this batch —
    /// a distributed worker attaches a fresh collector per batch so the
    /// batch's telemetry delta can be streamed back and merged. The batch
    /// runs on [`CampaignConfig::effective_threads`] workers like any
    /// campaign.
    pub fn run_indices(
        &self,
        indices: &[usize],
        observer: Option<Arc<dyn CampaignObserver>>,
    ) -> Result<Vec<(usize, InjectionResult)>, CampaignError> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.faults.len()) {
            return Err(CampaignError::ShardIndexOutOfRange {
                index: bad,
                faults: self.faults.len(),
            });
        }
        let subset: Vec<Fault> = indices.iter().map(|&i| self.faults[i]).collect();
        let mut ccfg = self.ccfg.clone();
        if observer.is_some() {
            ccfg.observer = observer;
        }
        let (results, _) = run_campaign_engine(
            &self.workload,
            &self.cfg,
            &self.golden,
            &ccfg,
            &subset,
            BTreeMap::new(),
            None,
            0,
            self.checkpoints.as_ref(),
        )
        .expect("journal-free shard cannot fail");
        Ok(indices.iter().copied().zip(results).collect())
    }

    /// Executes interleaved shard `index` of `count` (indices `i` with
    /// `i % count == index`) — the offline `--shard I/N` split, which keeps
    /// every shard a uniform subsample of the campaign.
    pub fn run_interleaved(
        &self,
        index: usize,
        count: usize,
        observer: Option<Arc<dyn CampaignObserver>>,
    ) -> Result<Vec<(usize, InjectionResult)>, CampaignError> {
        let indices: Vec<usize> = (index..self.faults.len()).step_by(count.max(1)).collect();
        self.run_indices(&indices, observer)
    }
}

/// Builds the checkpoint set a campaign configuration asks for, degrading
/// to checkpoint-free execution (with a warning) when the golden prefix
/// cannot support it.
pub(crate) fn build_checkpoints(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    ccfg: &CampaignConfig,
) -> (Option<CheckpointSet>, Vec<String>) {
    if ccfg.checkpoints == 0 {
        return (None, Vec::new());
    }
    match CheckpointSet::build(workload, cfg, golden, ccfg.checkpoints) {
        Ok(set) => (Some(set), Vec::new()),
        Err(e) => (
            None,
            vec![format!("checkpointing disabled, running fresh: {e}")],
        ),
    }
}

/// The shared worker-pool core: executes every fault not already in `done`,
/// optionally appending each fresh result to a journal, and returns results
/// in sampling order plus any degradation warnings. Checkpoints are built
/// by the caller (see [`build_checkpoints`]) so shard runners can reuse one
/// set across many engine invocations. Journal records are written at
/// `journal_offset + i` — the adaptive driver runs one engine invocation
/// per batch against a single campaign-global journal, so local batch
/// indices must be rebased before they hit the disk format.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_campaign_engine(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    ccfg: &CampaignConfig,
    faults: &[Fault],
    done: BTreeMap<usize, InjectionResult>,
    journal: Option<&Mutex<Journal>>,
    journal_offset: usize,
    checkpoints: Option<&CheckpointSet>,
) -> Result<(Vec<InjectionResult>, Vec<String>), CampaignError> {
    static NULL_OBSERVER: NullObserver = NullObserver;
    let observer: &dyn CampaignObserver = ccfg.observer.as_deref().unwrap_or(&NULL_OBSERVER);
    // Built before any injection: construction lockstep-verifies the golden
    // run against the reference model and panics if the substrate is wrong.
    let oracle = ccfg
        .verify_masked
        .then(|| MaskedOracle::new(workload, golden, ccfg.verify_tier));
    observer.on_campaign_start(ccfg.structure, faults.len());

    let mut warnings = Vec::new();
    let mut results: Vec<Option<InjectionResult>> = vec![None; faults.len()];
    for (i, r) in done {
        // Journaled results replay into the tallies without a wall-clock
        // sample (no simulation happens on resume).
        observer.on_resumed(ccfg.structure, &r);
        results[i] = Some(r);
    }
    let mut pending: Vec<usize> = Vec::with_capacity(faults.len());
    pending.extend((0..faults.len()).filter(|i| results[*i].is_none()));
    // Work in injection-cycle order so consecutive runs on one worker tend
    // to share a checkpoint, keeping the scratch simulator on the fast
    // journaled-restore path. Results are stored by original index, so the
    // output order (and determinism) is unchanged.
    pending.sort_by_key(|&i| faults[i].cycle);

    // Shared-prefix batching: split the cycle-sorted work into runs of
    // consecutive faults resuming from the same checkpoint, capped at the
    // configured batch size. With batching disabled (or inapplicable), each
    // unit is a single run on the classic scratch path.
    let batch_set = (ccfg.batch > 1 && ccfg.wall_budget.is_none())
        .then_some(checkpoints)
        .flatten();
    if ccfg.batch > 1 && batch_set.is_none() {
        // Batching was requested but cannot apply — without this warning the
        // campaign silently falls off a perf cliff with no way to tell which
        // execution path it actually got.
        let reason = if ccfg.wall_budget.is_some() {
            "a wall-clock budget is set (per-run accounting cannot share a prefix)"
        } else {
            "no checkpoint set is available"
        };
        warnings.push(format!(
            "shared-prefix batching disabled (batch = {}): {reason}",
            ccfg.batch
        ));
        observer.on_batching_disabled(reason);
    }
    let units: Vec<(usize, &[usize])> = match batch_set {
        Some(set) => {
            let mut units: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
            for (n, &i) in pending.iter().enumerate() {
                let si = set.nearest_index(faults[i].cycle);
                match units.last_mut() {
                    Some((s, r)) if *s == si && r.len() < ccfg.batch => r.end = n + 1,
                    _ => units.push((si, n..n + 1)),
                }
            }
            units.into_iter().map(|(s, r)| (s, &pending[r])).collect()
        }
        None => pending
            .iter()
            .enumerate()
            .map(|(n, _)| (0, &pending[n..n + 1]))
            .collect(),
    };

    // One resolution of the pool size, shared by the spawn loop below and
    // the worker-count figure telemetry reports.
    let workers = ccfg.effective_threads().min(pending.len().max(1));
    observer.on_worker_pool(workers);
    let next = AtomicUsize::new(0);
    let sink = Mutex::new(&mut results);
    let journal_err: Mutex<Option<std::io::Error>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Per-worker simulators, rewound between runs and batches.
                let mut worker = BatchWorker::default();
                let record = |i: usize, r: InjectionResult, elapsed: Duration| {
                    observer.on_run(ccfg.structure, &r, elapsed);
                    if let Some(j) = journal {
                        if let Err(e) = j.lock().unwrap().append(journal_offset + i, &r) {
                            journal_err.lock().unwrap().get_or_insert(e);
                        }
                    }
                    sink.lock().unwrap()[i] = Some(r);
                };
                loop {
                    let n = next.fetch_add(1, Ordering::Relaxed);
                    if n >= units.len() {
                        break;
                    }
                    let (snap_idx, unit) = &units[n];
                    match batch_set {
                        Some(set) => {
                            let batch: Vec<(usize, Fault)> =
                                unit.iter().map(|&i| (i, faults[i])).collect();
                            for (i, r, elapsed) in run_shared_prefix_batch(
                                workload,
                                cfg,
                                golden,
                                ccfg,
                                &batch,
                                set.snapshot(*snap_idx),
                                &mut worker,
                                set,
                                observer,
                                oracle.as_ref(),
                            ) {
                                record(i, r, elapsed);
                            }
                        }
                        None => {
                            let i = unit[0];
                            let t0 = Instant::now();
                            let r = run_one_isolated(
                                workload,
                                cfg,
                                golden,
                                faults[i],
                                ccfg.mode,
                                ccfg.burst_width,
                                ccfg.wall_budget,
                                &mut worker.scratch,
                                checkpoints,
                                ccfg.structure,
                                observer,
                                oracle.as_ref(),
                            );
                            record(i, r, t0.elapsed());
                        }
                    }
                }
            });
        }
    });

    observer.on_campaign_end(ccfg.structure);

    // Outside the workers' catch_unwind isolation: a violation here must be
    // loud, not folded into a SimAbort tally.
    if let Some(oracle) = &oracle {
        oracle.assert_clean(workload);
    }

    if let Some(e) = journal_err.into_inner().unwrap() {
        return Err(CampaignError::Io(e));
    }
    let results = results
        .into_iter()
        .map(|r| r.expect("all faults processed"))
        .collect();
    Ok((results, warnings))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign(structure: Structure, mode: RunMode, n: usize) -> CampaignResult {
        let w = avgi_workloads::by_name("sha").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        run_campaign(&w, &cfg, &golden, &CampaignConfig::new(structure, n, mode))
    }

    #[test]
    fn end_to_end_campaign_produces_all_results() {
        let c = small_campaign(Structure::RegFile, RunMode::EndToEnd, 40);
        assert_eq!(c.len(), 40);
        assert!(c.total_post_inject_cycles() > 0);
        assert_eq!(c.aborted_count(), 0);
        assert_eq!(c.wall_expired_count(), 0);
        assert!(c.warnings.is_empty());
        // Every completed run reports an output comparison.
        for r in &c.results {
            if r.outcome == RunOutcome::Completed {
                assert!(r.output_matches.is_some());
            }
        }
    }

    #[test]
    fn watchdog_budget_saturates_instead_of_overflowing() {
        // Pre-fix, `2 * golden_cycles + 20_000` wrapped for huge cycle
        // counts, producing a tiny watchdog that aborted healthy runs.
        assert_eq!(watchdog_budget(100), 20_200);
        assert_eq!(watchdog_budget(u64::MAX), u64::MAX);
        assert_eq!(watchdog_budget(u64::MAX / 2), u64::MAX);
        assert_eq!(watchdog_budget(u64::MAX / 2 - 10_001), u64::MAX - 3);
    }

    #[test]
    fn nearest_index_boundaries() {
        let set = CheckpointSet {
            cycles: vec![10, 100, 250],
            snaps: Vec::new(),
        };
        // Before the first snapshot: clamps to index 0.
        assert_eq!(set.nearest_index(0), 0);
        assert_eq!(set.nearest_index(9), 0);
        // Exactly on a snapshot cycle: that snapshot.
        assert_eq!(set.nearest_index(10), 0);
        assert_eq!(set.nearest_index(100), 1);
        assert_eq!(set.nearest_index(250), 2);
        // Between snapshots: the latest at or before.
        assert_eq!(set.nearest_index(99), 0);
        assert_eq!(set.nearest_index(249), 1);
        // Past the last snapshot: the last index, not one past it.
        assert_eq!(set.nearest_index(251), 2);
        assert_eq!(set.nearest_index(u64::MAX), 2);
    }

    #[test]
    fn batching_disablement_is_reported_not_silent() {
        use crate::telemetry::MetricsCollector;
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);

        // A wall budget forces per-run accounting; batching cannot engage.
        let metrics = Arc::new(MetricsCollector::new());
        let ccfg = CampaignConfig::new(Structure::RegFile, 8, RunMode::EndToEnd)
            .with_wall_budget(Duration::from_secs(3_600))
            .with_observer(metrics.clone());
        assert!(ccfg.batch > 1, "batching is on by default");
        let c = run_campaign(&w, &cfg, &golden, &ccfg);
        assert_eq!(c.len(), 8);
        assert!(
            c.warnings
                .iter()
                .any(|w| w.contains("batching disabled") && w.contains("wall-clock budget")),
            "expected a batching warning, got {:?}",
            c.warnings
        );
        assert_eq!(metrics.snapshot().batching_disabled, 1);

        // No checkpoints at all: same counter, different reason.
        let metrics = Arc::new(MetricsCollector::new());
        let ccfg = CampaignConfig::new(Structure::RegFile, 8, RunMode::EndToEnd)
            .with_checkpoints(0)
            .with_observer(metrics.clone());
        let c = run_campaign(&w, &cfg, &golden, &ccfg);
        assert!(
            c.warnings
                .iter()
                .any(|w| w.contains("batching disabled") && w.contains("no checkpoint set")),
            "expected a batching warning, got {:?}",
            c.warnings
        );
        assert_eq!(metrics.snapshot().batching_disabled, 1);

        // The default configuration batches; nothing to warn about.
        let metrics = Arc::new(MetricsCollector::new());
        let ccfg = CampaignConfig::new(Structure::RegFile, 8, RunMode::EndToEnd)
            .with_observer(metrics.clone());
        let c = run_campaign(&w, &cfg, &golden, &ccfg);
        assert!(c.warnings.is_empty(), "got {:?}", c.warnings);
        assert_eq!(metrics.snapshot().batching_disabled, 0);
    }

    #[test]
    fn post_ert_tail_verification_passes_on_a_clean_campaign() {
        // `assert_clean` panics at campaign end if any ERT-expired run's
        // architectural tail fails to complete with the reference output,
        // so a passing campaign is the assertion; the any() guard makes
        // sure the path was actually exercised.
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let ccfg = CampaignConfig::new(
            Structure::RegFile,
            32,
            RunMode::FirstDeviation {
                ert_window: Some(500),
            },
        )
        .with_masked_verification();
        let c = run_campaign(&w, &cfg, &golden, &ccfg);
        assert_eq!(c.len(), 32);
        assert!(
            c.results
                .iter()
                .any(|r| r.outcome == RunOutcome::ErtExpired),
            "no ERT-expired run; the tail check was never exercised"
        );
    }

    #[test]
    fn campaigns_are_reproducible_across_thread_counts() {
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let base = CampaignConfig::new(Structure::RegFile, 30, RunMode::Instrumented);
        let a = run_campaign(
            &w,
            &cfg,
            &golden,
            &CampaignConfig {
                threads: 1,
                ..base.clone()
            },
        );
        let b = run_campaign(&w, &cfg, &golden, &CampaignConfig { threads: 4, ..base });
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.fault, y.fault);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.cycles, y.cycles);
            assert_eq!(x.deviation, y.deviation);
        }
    }

    #[test]
    fn first_deviation_mode_is_never_slower_post_injection() {
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let n = 30;
        let e2e = run_campaign(
            &w,
            &cfg,
            &golden,
            &CampaignConfig::new(Structure::RegFile, n, RunMode::EndToEnd),
        );
        let avgi = run_campaign(
            &w,
            &cfg,
            &golden,
            &CampaignConfig::new(
                Structure::RegFile,
                n,
                RunMode::FirstDeviation {
                    ert_window: Some(2_000),
                },
            ),
        );
        assert!(avgi.total_post_inject_cycles() <= e2e.total_post_inject_cycles());
    }

    #[test]
    fn rob_faults_never_silently_corrupt() {
        // The check-at-use model: a ROB fault either crashes with an
        // integrity violation before any ISA effect, or is benign.
        let c = small_campaign(Structure::Rob, RunMode::Instrumented, 60);
        for r in &c.results {
            match r.outcome {
                RunOutcome::IntegrityViolation(_) => {
                    assert!(r.deviation.is_none(), "PRE must precede any deviation");
                }
                RunOutcome::Completed => {
                    assert_eq!(r.output_matches, Some(true), "ROB fault silently escaped");
                    assert!(r.deviation.is_none());
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn checkpointed_campaigns_are_bit_identical_to_fresh_runs() {
        // The §IV.B acceleration must not change any observable: same
        // outcomes, cycles, deviations, and output comparisons.
        let w = avgi_workloads::by_name("crc32").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let base = CampaignConfig::new(Structure::L1DData, 40, RunMode::Instrumented).with_seed(77);
        let fresh = run_campaign(&w, &cfg, &golden, &base.clone().with_checkpoints(0));
        let ckpt = run_campaign(&w, &cfg, &golden, &base.with_checkpoints(6));
        for (a, b) in fresh.results.iter().zip(&ckpt.results) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn checkpoint_set_picks_latest_at_or_before() {
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let set = CheckpointSet::build(&w, &cfg, &golden, 4).unwrap();
        assert_eq!(set.len(), 4);
        assert_eq!(set.nearest(0).cycle(), 0);
        let quarter = golden.cycles / 4;
        assert_eq!(set.nearest(quarter).cycle(), quarter);
        assert_eq!(set.nearest(quarter + 1).cycle(), quarter);
        assert_eq!(set.nearest(quarter - 1).cycle(), 0);
        assert!(set.nearest(golden.cycles).cycle() <= golden.cycles);
    }

    #[test]
    fn multi_bit_bursts_are_at_least_as_vulnerable() {
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let single =
            CampaignConfig::new(Structure::RegFile, 60, RunMode::Instrumented).with_seed(11);
        let burst = single.clone().with_burst(4);
        let s = run_campaign(&w, &cfg, &golden, &single);
        let b = run_campaign(&w, &cfg, &golden, &burst);
        let affected = |c: &CampaignResult| {
            c.results
                .iter()
                .filter(|r| {
                    r.deviation.is_some() || r.outcome.is_crash() || r.output_matches == Some(false)
                })
                .count()
        };
        assert!(
            affected(&b) >= affected(&s),
            "wider bursts cannot reduce corruption"
        );
    }

    /// A fault whose bit index is out of range genuinely panics inside the
    /// simulator, exercising the isolation machinery end to end.
    fn poisoned_faults(
        cfg: &MuarchConfig,
        golden_cycles: u64,
        n: usize,
        poison_at: &[usize],
    ) -> Vec<Fault> {
        let mut faults = sample_faults(Structure::RegFile, cfg, golden_cycles, n, 99).unwrap();
        for &i in poison_at {
            faults[i].site.bit = Structure::RegFile.bit_count(cfg) + 1_000_000;
        }
        faults
    }

    #[test]
    fn panicking_runs_are_isolated_and_recorded_as_aborts() {
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let faults = poisoned_faults(&cfg, golden.cycles, 12, &[2, 7]);
        let ccfg = CampaignConfig::new(Structure::RegFile, 12, RunMode::Instrumented);
        let c = run_campaign_with_faults(&w, &cfg, &golden, &ccfg, &faults);
        // Every injection yields a result; the poisoned ones are aborts.
        assert_eq!(c.len(), 12);
        assert_eq!(c.aborted_count(), 2);
        assert!((c.abort_rate() - 2.0 / 12.0).abs() < 1e-12);
        for (i, r) in c.results.iter().enumerate() {
            if i == 2 || i == 7 {
                assert_eq!(r.outcome, RunOutcome::SimAbort);
                assert!(r.outcome.is_crash());
                assert!(
                    r.abort_message.is_some(),
                    "abort must carry its panic message"
                );
                assert_eq!(r.cycles, 0);
            } else {
                assert_ne!(r.outcome, RunOutcome::SimAbort);
                assert!(r.abort_message.is_none());
            }
        }
    }

    #[test]
    fn panic_isolation_is_thread_count_independent() {
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let faults = poisoned_faults(&cfg, golden.cycles, 10, &[0, 5, 9]);
        let base = CampaignConfig::new(Structure::RegFile, 10, RunMode::Instrumented);
        let a = run_campaign_with_faults(
            &w,
            &cfg,
            &golden,
            &CampaignConfig {
                threads: 1,
                ..base.clone()
            },
            &faults,
        );
        let b = run_campaign_with_faults(
            &w,
            &cfg,
            &golden,
            &CampaignConfig { threads: 4, ..base },
            &faults,
        );
        assert_eq!(a.results, b.results);
        assert_eq!(a.aborted_count(), 3);
    }

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("avgi-journal-{}-{tag}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn journaled_campaign_matches_plain_campaign() {
        let w = avgi_workloads::by_name("crc32").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let ccfg = CampaignConfig::new(Structure::RegFile, 16, RunMode::Instrumented).with_seed(5);
        let reference = run_campaign(&w, &cfg, &golden, &ccfg);
        let path = temp_journal("plain");
        let journaled = run_campaign_journaled(&w, &cfg, &golden, &ccfg, &path).unwrap();
        assert_eq!(journaled.results, reference.results);
        // Re-running against the complete journal executes nothing new and
        // still reproduces the campaign exactly.
        let replay = run_campaign_journaled(&w, &cfg, &golden, &ccfg, &path).unwrap();
        assert_eq!(replay.results, reference.results);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interrupted_journal_resumes_bit_identical() {
        let w = avgi_workloads::by_name("crc32").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let ccfg = CampaignConfig::new(Structure::L1DData, 16, RunMode::Instrumented).with_seed(9);
        let reference = run_campaign(&w, &cfg, &golden, &ccfg);
        let path = temp_journal("resume");
        run_campaign_journaled(&w, &cfg, &golden, &ccfg, &path).unwrap();
        // Simulate an interruption: keep the header plus half the records,
        // then a torn partial line (the classic crash artifact).
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.split_inclusive('\n').collect();
        assert_eq!(lines.len(), 1 + 16, "header plus one record per injection");
        let mut truncated: String = lines[..1 + 8].concat();
        truncated.push_str("{\"i\":15,\"fault\":{\"structure\":\"Reg");
        std::fs::write(&path, &truncated).unwrap();
        let resumed = run_campaign_journaled(&w, &cfg, &golden, &ccfg, &path).unwrap();
        assert_eq!(
            resumed.results, reference.results,
            "resume must be bit-identical"
        );
        // The journal self-healed: it is whole again and fully replayable.
        let replay = run_campaign_journaled(&w, &cfg, &golden, &ccfg, &path).unwrap();
        assert_eq!(replay.results, reference.results);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_rejects_a_different_campaign() {
        let w = avgi_workloads::by_name("crc32").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let ccfg = CampaignConfig::new(Structure::RegFile, 8, RunMode::EndToEnd).with_seed(1);
        let path = temp_journal("mismatch");
        run_campaign_journaled(&w, &cfg, &golden, &ccfg, &path).unwrap();
        let other = ccfg.clone().with_seed(2);
        match run_campaign_journaled(&w, &cfg, &golden, &other, &path) {
            Err(CampaignError::JournalMismatch { field: "seed", .. }) => {}
            other => panic!("expected a seed mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journaled_campaign_preserves_aborts_across_resume() {
        // SimAbort results round-trip through the journal like any other
        // outcome: resume does not re-run (or re-panic) them.
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let faults = poisoned_faults(&cfg, golden.cycles, 6, &[1, 4]);
        let ccfg = CampaignConfig::new(Structure::RegFile, 6, RunMode::Instrumented);
        let c = run_campaign_with_faults(&w, &cfg, &golden, &ccfg, &faults);
        for (i, r) in c.results.iter().enumerate() {
            let line = crate::journal::record_line(i, r);
            let (idx, back) = crate::journal::parse_record(line.trim_end()).unwrap();
            assert_eq!(idx, i);
            assert_eq!(&back, r);
        }
    }

    #[test]
    fn zero_wall_budget_expires_long_runs() {
        use avgi_muarch::run::WALL_CHECK_CYCLES;
        let w = avgi_workloads::by_name("sha").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        assert!(
            golden.cycles > WALL_CHECK_CYCLES,
            "workload too short to reach the first wall-clock poll"
        );
        // Fresh runs from cycle 0 with a zero budget: every run reaches the
        // first poll point before it can complete.
        let ccfg = CampaignConfig::new(Structure::RegFile, 10, RunMode::EndToEnd)
            .with_checkpoints(0)
            .with_wall_budget(Duration::ZERO);
        let c = run_campaign(&w, &cfg, &golden, &ccfg);
        assert_eq!(c.len(), 10);
        assert!(c.wall_expired_count() > 0);
        for r in &c.results {
            assert_ne!(
                r.outcome,
                RunOutcome::Completed,
                "zero budget cannot complete"
            );
        }
    }

    #[test]
    fn masked_verification_passes_and_preserves_results() {
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let base = CampaignConfig::new(Structure::RegFile, 40, RunMode::EndToEnd);
        let plain = run_campaign(&w, &cfg, &golden, &base);
        let checked = run_campaign(&w, &cfg, &golden, &base.clone().with_masked_verification());
        // The oracle is observational: it must not perturb sampling,
        // outcomes, or classification.
        assert_eq!(plain.results.len(), checked.results.len());
        for (x, y) in plain.results.iter().zip(&checked.results) {
            assert_eq!(x.fault, y.fault);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.output_matches, y.output_matches);
        }
        assert!(checked
            .results
            .iter()
            .any(|r| r.output_matches == Some(true)));
    }

    #[test]
    #[should_panic(expected = "lockstep")]
    fn masked_verification_rejects_a_doctored_golden_trace() {
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        // Corrupt one golden output byte: the oracle's construction-time
        // lockstep of the fault-free run must catch the substrate lying
        // about architectural state before any injection happens.
        let mut doctored = (*golden).clone();
        doctored.output[0] ^= 0x01;
        let ccfg = CampaignConfig::new(Structure::RegFile, 4, RunMode::EndToEnd)
            .with_masked_verification();
        let _ = run_campaign(&w, &cfg, &Arc::new(doctored), &ccfg);
    }
}
