//! Fault-injection campaigns: one golden capture plus N injected runs,
//! executed across worker threads.

use crate::sampling::{multi_bit_burst, sample_faults};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::{Fault, Structure};
use avgi_muarch::pipeline::{capture_golden, Sim};
use avgi_muarch::run::{RunControl, RunOutcome};
use avgi_muarch::trace::{Deviation, GoldenRun};
use avgi_workloads::Workload;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// How far each injected run simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunMode {
    /// Traditional (accelerated) SFI: simulate to the end of the program and
    /// classify the final effect. Pre-injection cycles are skipped by
    /// checkpointing in both flows (§IV.B), so cost is counted post-injection.
    EndToEnd,
    /// Like [`RunMode::EndToEnd`], but additionally records the first
    /// commit-trace deviation — the instrumented runs behind the paper's
    /// §III joint HVF/AVF analysis (and behind weight learning).
    Instrumented,
    /// The AVGI production mode (insights 1–3): stop at the first deviation,
    /// or `ert_window` cycles after injection if nothing deviated.
    FirstDeviation {
        /// Effective-residency-time stop window (`None` disables insight 3).
        ert_window: Option<u64>,
    },
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Target structure.
    pub structure: Structure,
    /// Number of injections.
    pub faults: usize,
    /// RNG seed for fault sampling.
    pub seed: u64,
    /// Run mode.
    pub mode: RunMode,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Spatial multi-bit burst width (`1` = single-bit, the default model).
    pub burst_width: u32,
    /// Number of pre-injection checkpoints (`0` disables checkpointing).
    ///
    /// Checkpointing skips the fault-free pre-injection period by resuming
    /// each injected run from the latest snapshot at or before its
    /// injection cycle — the standard acceleration the paper assumes in
    /// *both* the traditional and the AVGI flow (§IV.B). Results are
    /// bit-identical with and without it.
    pub checkpoints: u32,
}

impl CampaignConfig {
    /// Single-bit campaign with `faults` injections in the given mode.
    pub fn new(structure: Structure, faults: usize, mode: RunMode) -> Self {
        CampaignConfig {
            structure,
            faults,
            seed: 0xAE61_0001,
            mode,
            threads: 0,
            burst_width: 1,
            checkpoints: 8,
        }
    }

    /// Sets the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the multi-bit burst width.
    pub fn with_burst(mut self, width: u32) -> Self {
        self.burst_width = width.max(1);
        self
    }

    /// Sets the checkpoint count (`0` disables checkpointing).
    pub fn with_checkpoints(mut self, count: u32) -> Self {
        self.checkpoints = count;
        self
    }
}

/// Mid-run simulator snapshots for skipping the pre-injection period.
///
/// Snapshots are taken at evenly spaced cycles of the fault-free prefix;
/// a faulty run resumes from the latest snapshot at or before its injection
/// cycle and produces exactly the results of an uninterrupted run.
#[derive(Debug, Clone)]
pub struct CheckpointSet {
    cycles: Vec<u64>,
    sims: Vec<Sim>,
}

impl CheckpointSet {
    /// Builds `count` snapshots (cycle 0 plus `count - 1` evenly spaced
    /// points of the golden execution).
    ///
    /// # Panics
    ///
    /// Panics if the fault-free prefix terminates before a snapshot point
    /// (impossible for a valid golden run).
    pub fn build(
        workload: &Workload,
        cfg: &MuarchConfig,
        golden: &Arc<GoldenRun>,
        count: u32,
    ) -> Self {
        let ctl = RunControl {
            max_cycles: watchdog(golden.cycles),
            golden: Some(golden.clone()),
            ..Default::default()
        };
        let mut sim = Sim::new(&workload.program, cfg.clone());
        let mut cycles = vec![0];
        let mut sims = vec![sim.clone()];
        for k in 1..count.max(1) {
            let target = golden.cycles * u64::from(k) / u64::from(count);
            let ended = sim.run_to_cycle(target, &ctl);
            assert!(ended.is_none(), "fault-free prefix ended early: {ended:?}");
            cycles.push(target);
            sims.push(sim.clone());
        }
        CheckpointSet { cycles, sims }
    }

    /// The latest snapshot at or before `cycle`, ready to be cloned.
    pub fn nearest(&self, cycle: u64) -> &Sim {
        let idx = match self.cycles.binary_search(&cycle) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        &self.sims[idx]
    }

    /// Number of snapshots held.
    pub fn len(&self) -> usize {
        self.sims.len()
    }

    /// Whether the set holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.sims.is_empty()
    }
}

/// The observables of one injected run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InjectionResult {
    /// The injected fault (first bit of the burst for multi-bit runs).
    pub fault: Fault,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// First commit-trace deviation, if any.
    pub deviation: Option<Deviation>,
    /// For completed runs: did the output match the golden output?
    pub output_matches: Option<bool>,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Simulated cycles after injection (the cost metric of Table II).
    pub post_inject_cycles: u64,
}

/// A finished campaign: the golden reference plus every injection result.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Workload name.
    pub workload: String,
    /// Target structure.
    pub structure: Structure,
    /// Run mode used.
    pub mode: RunMode,
    /// Fault-free execution length.
    pub golden_cycles: u64,
    /// Per-injection observables, in sampling order.
    pub results: Vec<InjectionResult>,
}

impl CampaignResult {
    /// Sum of post-injection cycles across all runs — the campaign's
    /// simulation cost in the paper's accounting.
    pub fn total_post_inject_cycles(&self) -> u64 {
        self.results.iter().map(|r| r.post_inject_cycles).sum()
    }

    /// Number of injections.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the campaign is empty.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }
}

/// Captures the golden run for a workload (convenience wrapper with the
/// standard watchdog).
pub fn golden_for(workload: &Workload, cfg: &MuarchConfig) -> Arc<GoldenRun> {
    capture_golden(&workload.program, cfg, 50_000_000)
}

fn watchdog(golden_cycles: u64) -> u64 {
    2 * golden_cycles + 20_000
}

/// Executes one injected run.
pub fn run_one(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    fault: Fault,
    mode: RunMode,
    burst_width: u32,
) -> InjectionResult {
    run_one_inner(workload, cfg, golden, fault, mode, burst_width, None)
}

/// Executes one injected run, resuming from a checkpoint when one is
/// available at or before the injection cycle.
pub fn run_one_from(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    fault: Fault,
    mode: RunMode,
    burst_width: u32,
    checkpoints: &CheckpointSet,
) -> InjectionResult {
    run_one_inner(workload, cfg, golden, fault, mode, burst_width, Some(checkpoints))
}

fn run_one_inner(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    fault: Fault,
    mode: RunMode,
    burst_width: u32,
    checkpoints: Option<&CheckpointSet>,
) -> InjectionResult {
    let mut sim = match checkpoints {
        Some(set) => set.nearest(fault.cycle).clone(),
        None => Sim::new(&workload.program, cfg.clone()),
    };
    for f in multi_bit_burst(fault, burst_width, cfg) {
        sim.inject(f);
    }
    let ctl = match mode {
        RunMode::EndToEnd | RunMode::Instrumented => RunControl {
            max_cycles: watchdog(golden.cycles),
            golden: Some(golden.clone()),
            ..Default::default()
        },
        RunMode::FirstDeviation { ert_window } => RunControl {
            max_cycles: watchdog(golden.cycles),
            golden: Some(golden.clone()),
            stop_at_first_deviation: true,
            ert_window,
            ..Default::default()
        },
    };
    let report = sim.run(&ctl);
    InjectionResult {
        fault,
        outcome: report.outcome,
        deviation: report.first_deviation,
        output_matches: report.output.as_ref().map(|o| *o == golden.output),
        cycles: report.cycles,
        post_inject_cycles: report.post_inject_cycles(),
    }
}

/// Runs a full campaign for one (workload, structure) pair.
///
/// Fault sampling is deterministic in `ccfg.seed`; execution is parallel
/// but the result order matches the sampling order, so campaigns are
/// reproducible run-to-run regardless of thread count.
pub fn run_campaign(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    ccfg: &CampaignConfig,
) -> CampaignResult {
    let faults = sample_faults(ccfg.structure, cfg, golden.cycles, ccfg.faults, ccfg.seed);
    let threads = if ccfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        ccfg.threads
    };
    let checkpoints = (ccfg.checkpoints > 0)
        .then(|| CheckpointSet::build(workload, cfg, golden, ccfg.checkpoints));
    let mut results: Vec<Option<InjectionResult>> = vec![None; faults.len()];
    let next = AtomicUsize::new(0);
    let sink = Mutex::new(&mut results);

    crossbeam::scope(|scope| {
        for _ in 0..threads.min(faults.len().max(1)) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= faults.len() {
                    break;
                }
                let r = run_one_inner(
                    workload,
                    cfg,
                    golden,
                    faults[i],
                    ccfg.mode,
                    ccfg.burst_width,
                    checkpoints.as_ref(),
                );
                sink.lock()[i] = Some(r);
            });
        }
    })
    .expect("campaign worker panicked");

    CampaignResult {
        workload: workload.name.to_string(),
        structure: ccfg.structure,
        mode: ccfg.mode,
        golden_cycles: golden.cycles,
        results: results.into_iter().map(|r| r.expect("all faults processed")).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign(structure: Structure, mode: RunMode, n: usize) -> CampaignResult {
        let w = avgi_workloads::by_name("sha").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        run_campaign(&w, &cfg, &golden, &CampaignConfig::new(structure, n, mode))
    }

    #[test]
    fn end_to_end_campaign_produces_all_results() {
        let c = small_campaign(Structure::RegFile, RunMode::EndToEnd, 40);
        assert_eq!(c.len(), 40);
        assert!(c.total_post_inject_cycles() > 0);
        // Every completed run reports an output comparison.
        for r in &c.results {
            if r.outcome == RunOutcome::Completed {
                assert!(r.output_matches.is_some());
            }
        }
    }

    #[test]
    fn campaigns_are_reproducible_across_thread_counts() {
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let base = CampaignConfig::new(Structure::RegFile, 30, RunMode::Instrumented);
        let a = run_campaign(&w, &cfg, &golden, &CampaignConfig { threads: 1, ..base.clone() });
        let b = run_campaign(&w, &cfg, &golden, &CampaignConfig { threads: 4, ..base });
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.fault, y.fault);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.cycles, y.cycles);
            assert_eq!(x.deviation, y.deviation);
        }
    }

    #[test]
    fn first_deviation_mode_is_never_slower_post_injection() {
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let n = 30;
        let e2e = run_campaign(
            &w,
            &cfg,
            &golden,
            &CampaignConfig::new(Structure::RegFile, n, RunMode::EndToEnd),
        );
        let avgi = run_campaign(
            &w,
            &cfg,
            &golden,
            &CampaignConfig::new(
                Structure::RegFile,
                n,
                RunMode::FirstDeviation { ert_window: Some(2_000) },
            ),
        );
        assert!(avgi.total_post_inject_cycles() <= e2e.total_post_inject_cycles());
    }

    #[test]
    fn rob_faults_never_silently_corrupt() {
        // The check-at-use model: a ROB fault either crashes with an
        // integrity violation before any ISA effect, or is benign.
        let c = small_campaign(Structure::Rob, RunMode::Instrumented, 60);
        for r in &c.results {
            match r.outcome {
                RunOutcome::IntegrityViolation(_) => {
                    assert!(r.deviation.is_none(), "PRE must precede any deviation");
                }
                RunOutcome::Completed => {
                    assert_eq!(r.output_matches, Some(true), "ROB fault silently escaped");
                    assert!(r.deviation.is_none());
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn checkpointed_campaigns_are_bit_identical_to_fresh_runs() {
        // The §IV.B acceleration must not change any observable: same
        // outcomes, cycles, deviations, and output comparisons.
        let w = avgi_workloads::by_name("crc32").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let base = CampaignConfig::new(Structure::L1DData, 40, RunMode::Instrumented)
            .with_seed(77);
        let fresh = run_campaign(&w, &cfg, &golden, &base.clone().with_checkpoints(0));
        let ckpt = run_campaign(&w, &cfg, &golden, &base.with_checkpoints(6));
        for (a, b) in fresh.results.iter().zip(&ckpt.results) {
            assert_eq!(a.fault, b.fault);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.deviation, b.deviation);
            assert_eq!(a.output_matches, b.output_matches);
            assert_eq!(a.post_inject_cycles, b.post_inject_cycles);
        }
    }

    #[test]
    fn checkpoint_set_picks_latest_at_or_before() {
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let set = CheckpointSet::build(&w, &cfg, &golden, 4);
        assert_eq!(set.len(), 4);
        assert_eq!(set.nearest(0).cycle(), 0);
        let quarter = golden.cycles / 4;
        assert_eq!(set.nearest(quarter).cycle(), quarter);
        assert_eq!(set.nearest(quarter + 1).cycle(), quarter);
        assert_eq!(set.nearest(quarter - 1).cycle(), 0);
        assert!(set.nearest(golden.cycles).cycle() <= golden.cycles);
    }

    #[test]
    fn multi_bit_bursts_are_at_least_as_vulnerable() {
        let w = avgi_workloads::by_name("bitcount").unwrap();
        let cfg = MuarchConfig::big();
        let golden = golden_for(&w, &cfg);
        let single =
            CampaignConfig::new(Structure::RegFile, 60, RunMode::Instrumented).with_seed(11);
        let burst = single.clone().with_burst(4);
        let s = run_campaign(&w, &cfg, &golden, &single);
        let b = run_campaign(&w, &cfg, &golden, &burst);
        let affected = |c: &CampaignResult| {
            c.results
                .iter()
                .filter(|r| r.deviation.is_some() || r.outcome.is_crash() || r.output_matches == Some(false))
                .count()
        };
        assert!(affected(&b) >= affected(&s), "wider bursts cannot reduce corruption");
    }
}
