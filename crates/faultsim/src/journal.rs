//! Durable, resumable campaign journals.
//!
//! A journal is a line-oriented file: one JSON header identifying the
//! campaign — (workload, structure, seed, mode, burst width, fault count,
//! golden cycles, microarchitecture-config hash) — followed by one JSON
//! record per completed [`InjectionResult`], tagged with its fault index.
//! Workers stream records as runs finish (in any order; the index makes
//! order irrelevant) and flush per record, so an interrupted campaign
//! loses at most the in-flight runs.
//!
//! Loading tolerates a truncated tail: parsing stops at the first
//! malformed line (the classic torn write after a crash) and the
//! unfinished runs are simply re-executed on resume. Because every run is
//! deterministic, a resumed campaign is bit-identical to an uninterrupted
//! one. A journal whose header does not match the resuming campaign's key
//! is rejected with [`CampaignError::JournalMismatch`] rather than
//! silently mixing incompatible results.

use crate::campaign::{CampaignConfig, InjectionResult, RunMode};
use crate::error::CampaignError;
use crate::json::{escape, parse, Json};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::{Fault, FaultSite, Structure};
use avgi_muarch::mem::MemFault;
use avgi_muarch::run::{RunOutcome, TrapKind};
use avgi_muarch::trace::{CommitRecord, Deviation};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Journal format version; bumped on any incompatible record change.
pub const JOURNAL_VERSION: u64 = 1;

/// FNV-1a hash of the microarchitecture configuration (over its canonical
/// `Debug` rendering): campaigns under different configurations must never
/// share a journal.
pub fn config_hash(cfg: &MuarchConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{cfg:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything that identifies a campaign for resume purposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignKey {
    /// Workload name.
    pub workload: String,
    /// Target structure.
    pub structure: Structure,
    /// Sampling seed.
    pub seed: u64,
    /// Run mode.
    pub mode: RunMode,
    /// Multi-bit burst width.
    pub burst_width: u32,
    /// Number of injections.
    pub faults: usize,
    /// Fault-free execution length (pins the golden run).
    pub golden_cycles: u64,
    /// [`config_hash`] of the microarchitecture configuration.
    pub config_hash: u64,
}

impl CampaignKey {
    /// Builds the key for one campaign.
    pub fn new(
        workload: &str,
        cfg: &MuarchConfig,
        golden_cycles: u64,
        ccfg: &CampaignConfig,
    ) -> Self {
        CampaignKey {
            workload: workload.to_string(),
            structure: ccfg.structure,
            seed: ccfg.seed,
            mode: ccfg.mode,
            burst_width: ccfg.burst_width,
            faults: ccfg.faults,
            golden_cycles,
            config_hash: config_hash(cfg),
        }
    }
}

fn mode_fields(mode: RunMode) -> (&'static str, Option<u64>, bool) {
    match mode {
        RunMode::EndToEnd => ("EndToEnd", None, false),
        RunMode::Instrumented => ("Instrumented", None, false),
        RunMode::FirstDeviation { ert_window } => ("FirstDeviation", ert_window, true),
    }
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

fn header_line(key: &CampaignKey) -> String {
    let (mode, ert, _) = mode_fields(key.mode);
    format!(
        "{{\"kind\":\"avgi-campaign-journal\",\"version\":{},\"workload\":\"{}\",\"structure\":\"{}\",\"seed\":{},\"mode\":\"{}\",\"ert_window\":{},\"burst\":{},\"faults\":{},\"golden_cycles\":{},\"config_hash\":{}}}\n",
        JOURNAL_VERSION,
        escape(&key.workload),
        key.structure.ident(),
        key.seed,
        mode,
        opt_u64(ert),
        key.burst_width,
        key.faults,
        key.golden_cycles,
        key.config_hash,
    )
}

fn parse_header(line: &str) -> Result<CampaignKey, CampaignError> {
    let bad = |m: &str| CampaignError::JournalHeader(m.to_string());
    let v = parse(line).map_err(CampaignError::JournalHeader)?;
    if v.get("kind").and_then(Json::as_str) != Some("avgi-campaign-journal") {
        return Err(bad("missing journal kind marker"));
    }
    let version = v
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad("missing version"))?;
    if version != JOURNAL_VERSION {
        return Err(CampaignError::JournalMismatch {
            field: "version",
            expected: JOURNAL_VERSION.to_string(),
            found: version.to_string(),
        });
    }
    let structure = v
        .get("structure")
        .and_then(Json::as_str)
        .and_then(Structure::from_ident)
        .ok_or_else(|| bad("bad structure"))?;
    let ert = match v.get("ert_window") {
        None | Some(Json::Null) => None,
        Some(w) => Some(w.as_u64().ok_or_else(|| bad("bad ert_window"))?),
    };
    let mode = match v.get("mode").and_then(Json::as_str) {
        Some("EndToEnd") => RunMode::EndToEnd,
        Some("Instrumented") => RunMode::Instrumented,
        Some("FirstDeviation") => RunMode::FirstDeviation { ert_window: ert },
        _ => return Err(bad("bad mode")),
    };
    Ok(CampaignKey {
        workload: v
            .get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing workload"))?
            .to_string(),
        structure,
        seed: v
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing seed"))?,
        mode,
        burst_width: v
            .get("burst")
            .and_then(Json::as_u32)
            .ok_or_else(|| bad("missing burst"))?,
        faults: v
            .get("faults")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing faults"))? as usize,
        golden_cycles: v
            .get("golden_cycles")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing golden_cycles"))?,
        config_hash: v
            .get("config_hash")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing config_hash"))?,
    })
}

fn check_key(expected: &CampaignKey, found: &CampaignKey) -> Result<(), CampaignError> {
    let mismatch = |field: &'static str, e: String, f: String| {
        Err(CampaignError::JournalMismatch {
            field,
            expected: e,
            found: f,
        })
    };
    if found.workload != expected.workload {
        return mismatch(
            "workload",
            expected.workload.clone(),
            found.workload.clone(),
        );
    }
    if found.structure != expected.structure {
        return mismatch(
            "structure",
            expected.structure.ident().into(),
            found.structure.ident().into(),
        );
    }
    if found.seed != expected.seed {
        return mismatch("seed", expected.seed.to_string(), found.seed.to_string());
    }
    if found.mode != expected.mode {
        return mismatch(
            "mode",
            format!("{:?}", expected.mode),
            format!("{:?}", found.mode),
        );
    }
    if found.burst_width != expected.burst_width {
        return mismatch(
            "burst",
            expected.burst_width.to_string(),
            found.burst_width.to_string(),
        );
    }
    if found.faults != expected.faults {
        return mismatch(
            "faults",
            expected.faults.to_string(),
            found.faults.to_string(),
        );
    }
    if found.golden_cycles != expected.golden_cycles {
        return mismatch(
            "golden_cycles",
            expected.golden_cycles.to_string(),
            found.golden_cycles.to_string(),
        );
    }
    if found.config_hash != expected.config_hash {
        return mismatch(
            "config_hash",
            expected.config_hash.to_string(),
            found.config_hash.to_string(),
        );
    }
    Ok(())
}

// ---- record encoding ----

fn outcome_json(o: RunOutcome) -> String {
    match o {
        RunOutcome::Completed => "{\"t\":\"Completed\"}".into(),
        RunOutcome::Watchdog => "{\"t\":\"Watchdog\"}".into(),
        RunOutcome::StoppedAtDeviation => "{\"t\":\"StoppedAtDeviation\"}".into(),
        RunOutcome::ErtExpired => "{\"t\":\"ErtExpired\"}".into(),
        RunOutcome::WallClockExpired => "{\"t\":\"WallClockExpired\"}".into(),
        RunOutcome::SimAbort => "{\"t\":\"SimAbort\"}".into(),
        RunOutcome::IntegrityViolation(s) => {
            format!(
                "{{\"t\":\"IntegrityViolation\",\"structure\":\"{}\"}}",
                s.ident()
            )
        }
        RunOutcome::Trap(TrapKind::UndefinedInstruction) => {
            "{\"t\":\"Trap\",\"trap\":\"UndefinedInstruction\"}".into()
        }
        RunOutcome::Trap(TrapKind::Memory(m)) => {
            let (tag, addr) = match m {
                MemFault::OutOfRange(a) => ("OutOfRange", a),
                MemFault::WriteToCode(a) => ("WriteToCode", a),
                MemFault::Misaligned(a) => ("Misaligned", a),
                MemFault::ExecuteFault(a) => ("ExecuteFault", a),
            };
            format!("{{\"t\":\"Trap\",\"trap\":\"Memory\",\"mem\":\"{tag}\",\"addr\":{addr}}}")
        }
    }
}

fn outcome_from_json(v: &Json) -> Result<RunOutcome, String> {
    match v.get("t").and_then(Json::as_str) {
        Some("Completed") => Ok(RunOutcome::Completed),
        Some("Watchdog") => Ok(RunOutcome::Watchdog),
        Some("StoppedAtDeviation") => Ok(RunOutcome::StoppedAtDeviation),
        Some("ErtExpired") => Ok(RunOutcome::ErtExpired),
        Some("WallClockExpired") => Ok(RunOutcome::WallClockExpired),
        Some("SimAbort") => Ok(RunOutcome::SimAbort),
        Some("IntegrityViolation") => v
            .get("structure")
            .and_then(Json::as_str)
            .and_then(Structure::from_ident)
            .map(RunOutcome::IntegrityViolation)
            .ok_or_else(|| "bad integrity-violation structure".into()),
        Some("Trap") => match v.get("trap").and_then(Json::as_str) {
            Some("UndefinedInstruction") => Ok(RunOutcome::Trap(TrapKind::UndefinedInstruction)),
            Some("Memory") => {
                let addr = v
                    .get("addr")
                    .and_then(Json::as_u32)
                    .ok_or("bad trap addr")?;
                let m = match v.get("mem").and_then(Json::as_str) {
                    Some("OutOfRange") => MemFault::OutOfRange(addr),
                    Some("WriteToCode") => MemFault::WriteToCode(addr),
                    Some("Misaligned") => MemFault::Misaligned(addr),
                    Some("ExecuteFault") => MemFault::ExecuteFault(addr),
                    _ => return Err("bad memory-fault kind".into()),
                };
                Ok(RunOutcome::Trap(TrapKind::Memory(m)))
            }
            _ => Err("bad trap kind".into()),
        },
        _ => Err("bad outcome tag".into()),
    }
}

fn commit_json(r: &CommitRecord) -> String {
    format!("[{},{},{},{},{}]", r.cycle, r.pc, r.raw, r.ea, r.val)
}

fn commit_from_json(v: &Json) -> Result<CommitRecord, String> {
    let a = v.as_array().ok_or("commit record is not an array")?;
    if a.len() != 5 {
        return Err("commit record needs 5 fields".into());
    }
    let u = |i: usize| a[i].as_u64().ok_or("bad commit field");
    Ok(CommitRecord {
        cycle: u(0)?,
        pc: a[1].as_u32().ok_or("bad pc")?,
        raw: a[2].as_u32().ok_or("bad raw")?,
        ea: a[3].as_u32().ok_or("bad ea")?,
        val: a[4].as_u32().ok_or("bad val")?,
    })
}

/// Serializes one record line (with trailing newline).
pub fn record_line(idx: usize, r: &InjectionResult) -> String {
    let deviation = match &r.deviation {
        None => "null".to_string(),
        Some(d) => format!(
            "{{\"index\":{},\"golden\":{},\"faulty\":{}}}",
            d.index,
            commit_json(&d.golden),
            commit_json(&d.faulty)
        ),
    };
    let output_matches = match r.output_matches {
        None => "null",
        Some(true) => "true",
        Some(false) => "false",
    };
    let abort = match &r.abort_message {
        None => "null".to_string(),
        Some(m) => format!("\"{}\"", escape(m)),
    };
    format!(
        "{{\"i\":{},\"fault\":{{\"structure\":\"{}\",\"bit\":{},\"cycle\":{}}},\"outcome\":{},\"deviation\":{},\"output_matches\":{},\"cycles\":{},\"post\":{},\"abort\":{}}}\n",
        idx,
        r.fault.site.structure.ident(),
        r.fault.site.bit,
        r.fault.cycle,
        outcome_json(r.outcome),
        deviation,
        output_matches,
        r.cycles,
        r.post_inject_cycles,
        abort,
    )
}

/// Parses one record line back into `(fault index, result)`.
pub fn parse_record(line: &str) -> Result<(usize, InjectionResult), String> {
    record_from_json(&parse(line)?)
}

/// Decodes one already-parsed record object back into
/// `(fault index, result)` — the same shape [`record_line`] writes, also
/// used as the per-result element of `avgi-grid` batch frames.
pub fn record_from_json(v: &Json) -> Result<(usize, InjectionResult), String> {
    let idx = v.get("i").and_then(Json::as_u64).ok_or("missing index")? as usize;
    let f = v.get("fault").ok_or("missing fault")?;
    let fault = Fault {
        site: FaultSite {
            structure: f
                .get("structure")
                .and_then(Json::as_str)
                .and_then(Structure::from_ident)
                .ok_or("bad fault structure")?,
            bit: f.get("bit").and_then(Json::as_u64).ok_or("bad fault bit")?,
        },
        cycle: f
            .get("cycle")
            .and_then(Json::as_u64)
            .ok_or("bad fault cycle")?,
    };
    let outcome = outcome_from_json(v.get("outcome").ok_or("missing outcome")?)?;
    let deviation = match v.get("deviation") {
        None | Some(Json::Null) => None,
        Some(d) => Some(Deviation {
            index: d
                .get("index")
                .and_then(Json::as_u64)
                .ok_or("bad deviation index")?,
            golden: commit_from_json(d.get("golden").ok_or("missing golden")?)?,
            faulty: commit_from_json(d.get("faulty").ok_or("missing faulty")?)?,
        }),
    };
    let output_matches = match v.get("output_matches") {
        None | Some(Json::Null) => None,
        Some(b) => Some(b.as_bool().ok_or("bad output_matches")?),
    };
    let abort_message = match v.get("abort") {
        None | Some(Json::Null) => None,
        Some(s) => Some(s.as_str().ok_or("bad abort message")?.to_string()),
    };
    Ok((
        idx,
        InjectionResult {
            fault,
            outcome,
            deviation,
            output_matches,
            cycles: v
                .get("cycles")
                .and_then(Json::as_u64)
                .ok_or("missing cycles")?,
            post_inject_cycles: v.get("post").and_then(Json::as_u64).ok_or("missing post")?,
            abort_message,
        },
    ))
}

/// An open, append-mode campaign journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for the campaign identified
    /// by `key`, returning the already-journaled results.
    ///
    /// * No file / empty file: a fresh journal is created with a header.
    /// * Existing file: the header must match `key`
    ///   ([`CampaignError::JournalMismatch`] otherwise); records are loaded
    ///   up to the first malformed line, so a torn tail from an interrupted
    ///   campaign is recovered from cleanly.
    pub fn open(
        path: &Path,
        key: &CampaignKey,
    ) -> Result<(Journal, BTreeMap<usize, InjectionResult>), CampaignError> {
        let mut done = BTreeMap::new();
        let existing = std::fs::read_to_string(path).unwrap_or_default();
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let mut lines = existing.split_inclusive('\n');
        let mut valid_len = 0u64;
        match lines.next() {
            None | Some("") => {
                // Fresh journal: write the header.
                let mut file = file;
                file.write_all(header_line(key).as_bytes())?;
                file.flush()?;
                return Ok((Journal { file }, done));
            }
            Some(header) if header.ends_with('\n') => {
                let found = parse_header(header.trim_end())?;
                check_key(key, &found)?;
                valid_len += header.len() as u64;
                for line in lines {
                    if !line.ends_with('\n') {
                        break; // torn tail: re-run this record
                    }
                    match parse_record(line.trim_end()) {
                        Ok((idx, r)) if idx < key.faults => {
                            done.insert(idx, r);
                        }
                        Ok(_) => {}      // stale index beyond the campaign
                        Err(_) => break, // corruption: drop the rest
                    }
                    valid_len += line.len() as u64;
                }
            }
            Some(_) => {
                // Header itself was torn; the journal holds nothing usable.
                return Err(CampaignError::JournalHeader("truncated header line".into()));
            }
        }
        // Self-heal: chop any torn/corrupt tail so fresh appends start on a
        // clean line boundary.
        if valid_len < existing.len() as u64 {
            file.set_len(valid_len)?;
        }
        Ok((Journal { file }, done))
    }

    /// Appends one completed result and flushes it to the OS, so a crash
    /// immediately after loses nothing.
    pub fn append(&mut self, idx: usize, r: &InjectionResult) -> std::io::Result<()> {
        self.file.write_all(record_line(idx, r).as_bytes())?;
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result(outcome: RunOutcome) -> InjectionResult {
        InjectionResult {
            fault: Fault {
                site: FaultSite {
                    structure: Structure::L1DTag,
                    bit: 4321,
                },
                cycle: 987,
            },
            outcome,
            deviation: Some(Deviation {
                index: 7,
                golden: CommitRecord {
                    cycle: 10,
                    pc: 4,
                    raw: 0xdead_beef,
                    ea: 64,
                    val: 5,
                },
                faulty: CommitRecord {
                    cycle: 11,
                    pc: 4,
                    raw: 0xdead_beef,
                    ea: 64,
                    val: 9,
                },
            }),
            output_matches: Some(false),
            cycles: 12345,
            post_inject_cycles: 678,
            abort_message: None,
        }
    }

    #[test]
    fn records_round_trip_for_every_outcome() {
        use avgi_muarch::mem::MemFault;
        let outcomes = [
            RunOutcome::Completed,
            RunOutcome::Watchdog,
            RunOutcome::StoppedAtDeviation,
            RunOutcome::ErtExpired,
            RunOutcome::WallClockExpired,
            RunOutcome::SimAbort,
            RunOutcome::IntegrityViolation(Structure::Rob),
            RunOutcome::Trap(TrapKind::UndefinedInstruction),
            RunOutcome::Trap(TrapKind::Memory(MemFault::OutOfRange(0x1234))),
            RunOutcome::Trap(TrapKind::Memory(MemFault::WriteToCode(8))),
            RunOutcome::Trap(TrapKind::Memory(MemFault::Misaligned(3))),
            RunOutcome::Trap(TrapKind::Memory(MemFault::ExecuteFault(0))),
        ];
        for (i, &outcome) in outcomes.iter().enumerate() {
            let mut r = sample_result(outcome);
            if outcome == RunOutcome::SimAbort {
                r.abort_message = Some("index out of bounds: \"quoted\"\npanic".into());
            }
            let line = record_line(i, &r);
            assert!(line.ends_with('\n'));
            let (idx, back) = parse_record(line.trim_end()).unwrap();
            assert_eq!(idx, i);
            assert_eq!(back, r, "outcome {outcome:?} did not round-trip");
        }
    }

    #[test]
    fn minimal_fields_round_trip() {
        let r = InjectionResult {
            fault: Fault {
                site: FaultSite {
                    structure: Structure::RegFile,
                    bit: 0,
                },
                cycle: 0,
            },
            outcome: RunOutcome::Completed,
            deviation: None,
            output_matches: None,
            cycles: u64::MAX,
            post_inject_cycles: 0,
            abort_message: None,
        };
        let (idx, back) = parse_record(record_line(0, &r).trim_end()).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(back, r);
    }

    #[test]
    fn header_round_trips_and_mismatch_is_detected() {
        let cfg = MuarchConfig::big();
        let key = CampaignKey {
            workload: "sha".into(),
            structure: Structure::Itlb,
            seed: 42,
            mode: RunMode::FirstDeviation {
                ert_window: Some(2000),
            },
            burst_width: 2,
            faults: 64,
            golden_cycles: 9001,
            config_hash: config_hash(&cfg),
        };
        let parsed = parse_header(header_line(&key).trim_end()).unwrap();
        assert_eq!(parsed, key);
        assert!(check_key(&key, &parsed).is_ok());
        let other = CampaignKey {
            seed: 43,
            ..key.clone()
        };
        match check_key(&key, &other) {
            Err(CampaignError::JournalMismatch { field: "seed", .. }) => {}
            other => panic!("expected seed mismatch, got {other:?}"),
        }
    }

    #[test]
    fn config_hash_distinguishes_configs() {
        let big = MuarchConfig::big();
        let mut small = MuarchConfig::big();
        small.phys_regs /= 2;
        assert_ne!(config_hash(&big), config_hash(&small));
        assert_eq!(config_hash(&big), config_hash(&MuarchConfig::big()));
    }
}
