//! Durable, resumable campaign journals.
//!
//! A journal is a line-oriented file: one JSON header identifying the
//! campaign — (workload, structure, seed, mode, burst width, fault count,
//! golden cycles, microarchitecture-config hash) — followed by one JSON
//! record per completed [`InjectionResult`], tagged with its fault index.
//! Workers stream records as runs finish (in any order; the index makes
//! order irrelevant) and flush per record, so an interrupted campaign
//! loses at most the in-flight runs.
//!
//! Every line carries a CRC32 suffix (`{json} {crc:08x}`), so corruption
//! anywhere in the file — not just a torn tail — is detected. Loading
//! stops at the first line that fails its checksum or fails to parse (the
//! classic torn write after a crash, or a flipped bit mid-file) and the
//! affected runs are simply re-executed on resume. Because every run is
//! deterministic, a resumed campaign is bit-identical to an uninterrupted
//! one. A journal whose header does not match the resuming campaign's key
//! is rejected with [`CampaignError::JournalMismatch`] rather than
//! silently mixing incompatible results. The header itself is created
//! atomically (temp file + `fsync` + rename), so no crash window can leave
//! a headerless journal behind; how aggressively record appends reach
//! stable storage is the caller's [`DurabilityPolicy`].

use crate::campaign::{CampaignConfig, InjectionResult, RunMode};
use crate::error::CampaignError;
use crate::json::{escape, parse, Json};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::{Fault, FaultSite, Structure};
use avgi_muarch::mem::MemFault;
use avgi_muarch::run::{RunOutcome, TrapKind};
use avgi_muarch::trace::{CommitRecord, Deviation};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Journal format version; bumped on any incompatible record change.
/// Version 2 added the per-line CRC32 suffix.
pub const JOURNAL_VERSION: u64 = 2;

/// CRC32 (IEEE 802.3, reflected) over `bytes` — the checksum behind both
/// journal line suffixes and `avgi-grid` frame trailers. Bitwise rather
/// than table-driven: integrity checks are nowhere near any hot path.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Seals one journal line: `{json} {crc:08x}\n`. The checksum covers the
/// JSON text only; `json` must be a compact (space-free) single line, which
/// everything [`record_line`] and the header emit is. Public so other
/// journal-shaped logs (e.g. the grid's submission queue) share the exact
/// sealing format instead of reinventing it.
pub fn seal(json: &str) -> String {
    format!("{json} {:08x}\n", crc32(json.as_bytes()))
}

/// Verifies and strips a sealed line's checksum suffix, returning the JSON
/// text. `line` must already be newline-trimmed.
pub fn unseal(line: &str) -> Result<&str, String> {
    let (json, suffix) = line
        .rsplit_once(' ')
        .ok_or_else(|| "missing checksum suffix".to_string())?;
    let expected =
        u32::from_str_radix(suffix, 16).map_err(|_| format!("bad checksum suffix {suffix:?}"))?;
    let found = crc32(json.as_bytes());
    if expected != found {
        return Err(format!(
            "checksum mismatch: line says {expected:08x}, content is {found:08x}"
        ));
    }
    Ok(json)
}

/// How aggressively journal appends are pushed to stable storage.
///
/// Every append always flushes to the OS, so a *process* crash loses at
/// most the in-flight record under either policy; the policies differ only
/// in what a *machine* crash (power cut, kernel panic) can take with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityPolicy {
    /// Flush only (the default): the OS page cache owns the tail, so a
    /// machine crash may lose recently appended records. They are simply
    /// re-executed on resume — for deterministic campaigns this costs
    /// wall-clock, never correctness.
    #[default]
    Flush,
    /// Additionally `fsync` after every `n` appends (and on
    /// [`Journal::sync`]), bounding machine-crash loss to `n - 1` records
    /// at the cost of a disk round-trip per `n` appends. `FsyncEveryN(1)`
    /// is classic write-ahead-log durability.
    FsyncEveryN(u64),
}

/// FNV-1a hash of the microarchitecture configuration (over its canonical
/// `Debug` rendering): campaigns under different configurations must never
/// share a journal.
pub fn config_hash(cfg: &MuarchConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{cfg:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything that identifies a campaign for resume purposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignKey {
    /// Workload name.
    pub workload: String,
    /// Target structure.
    pub structure: Structure,
    /// Sampling seed.
    pub seed: u64,
    /// Run mode.
    pub mode: RunMode,
    /// Multi-bit burst width.
    pub burst_width: u32,
    /// Number of injections.
    pub faults: usize,
    /// Fault-free execution length (pins the golden run).
    pub golden_cycles: u64,
    /// [`config_hash`] of the microarchitecture configuration.
    pub config_hash: u64,
}

impl CampaignKey {
    /// Builds the key for one campaign.
    pub fn new(
        workload: &str,
        cfg: &MuarchConfig,
        golden_cycles: u64,
        ccfg: &CampaignConfig,
    ) -> Self {
        CampaignKey {
            workload: workload.to_string(),
            structure: ccfg.structure,
            seed: ccfg.seed,
            mode: ccfg.mode,
            burst_width: ccfg.burst_width,
            faults: ccfg.faults,
            golden_cycles,
            config_hash: config_hash(cfg),
        }
    }
}

fn mode_fields(mode: RunMode) -> (&'static str, Option<u64>, bool) {
    match mode {
        RunMode::EndToEnd => ("EndToEnd", None, false),
        RunMode::Instrumented => ("Instrumented", None, false),
        RunMode::FirstDeviation { ert_window } => ("FirstDeviation", ert_window, true),
    }
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

fn header_line(key: &CampaignKey) -> String {
    let (mode, ert, _) = mode_fields(key.mode);
    format!(
        "{{\"kind\":\"avgi-campaign-journal\",\"version\":{},\"workload\":\"{}\",\"structure\":\"{}\",\"seed\":{},\"mode\":\"{}\",\"ert_window\":{},\"burst\":{},\"faults\":{},\"golden_cycles\":{},\"config_hash\":{}}}\n",
        JOURNAL_VERSION,
        escape(&key.workload),
        key.structure.ident(),
        key.seed,
        mode,
        opt_u64(ert),
        key.burst_width,
        key.faults,
        key.golden_cycles,
        key.config_hash,
    )
}

fn parse_header(line: &str) -> Result<CampaignKey, CampaignError> {
    let bad = |m: &str| CampaignError::JournalHeader(m.to_string());
    let v = parse(line).map_err(CampaignError::JournalHeader)?;
    if v.get("kind").and_then(Json::as_str) != Some("avgi-campaign-journal") {
        return Err(bad("missing journal kind marker"));
    }
    let version = v
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad("missing version"))?;
    if version != JOURNAL_VERSION {
        return Err(CampaignError::JournalMismatch {
            field: "version",
            expected: JOURNAL_VERSION.to_string(),
            found: version.to_string(),
        });
    }
    let structure = v
        .get("structure")
        .and_then(Json::as_str)
        .and_then(Structure::from_ident)
        .ok_or_else(|| bad("bad structure"))?;
    let ert = match v.get("ert_window") {
        None | Some(Json::Null) => None,
        Some(w) => Some(w.as_u64().ok_or_else(|| bad("bad ert_window"))?),
    };
    let mode = match v.get("mode").and_then(Json::as_str) {
        Some("EndToEnd") => RunMode::EndToEnd,
        Some("Instrumented") => RunMode::Instrumented,
        Some("FirstDeviation") => RunMode::FirstDeviation { ert_window: ert },
        _ => return Err(bad("bad mode")),
    };
    Ok(CampaignKey {
        workload: v
            .get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing workload"))?
            .to_string(),
        structure,
        seed: v
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing seed"))?,
        mode,
        burst_width: v
            .get("burst")
            .and_then(Json::as_u32)
            .ok_or_else(|| bad("missing burst"))?,
        faults: v
            .get("faults")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing faults"))? as usize,
        golden_cycles: v
            .get("golden_cycles")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing golden_cycles"))?,
        config_hash: v
            .get("config_hash")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing config_hash"))?,
    })
}

fn check_key(expected: &CampaignKey, found: &CampaignKey) -> Result<(), CampaignError> {
    let mismatch = |field: &'static str, e: String, f: String| {
        Err(CampaignError::JournalMismatch {
            field,
            expected: e,
            found: f,
        })
    };
    if found.workload != expected.workload {
        return mismatch(
            "workload",
            expected.workload.clone(),
            found.workload.clone(),
        );
    }
    if found.structure != expected.structure {
        return mismatch(
            "structure",
            expected.structure.ident().into(),
            found.structure.ident().into(),
        );
    }
    if found.seed != expected.seed {
        return mismatch("seed", expected.seed.to_string(), found.seed.to_string());
    }
    if found.mode != expected.mode {
        return mismatch(
            "mode",
            format!("{:?}", expected.mode),
            format!("{:?}", found.mode),
        );
    }
    if found.burst_width != expected.burst_width {
        return mismatch(
            "burst",
            expected.burst_width.to_string(),
            found.burst_width.to_string(),
        );
    }
    if found.faults != expected.faults {
        return mismatch(
            "faults",
            expected.faults.to_string(),
            found.faults.to_string(),
        );
    }
    if found.golden_cycles != expected.golden_cycles {
        return mismatch(
            "golden_cycles",
            expected.golden_cycles.to_string(),
            found.golden_cycles.to_string(),
        );
    }
    if found.config_hash != expected.config_hash {
        return mismatch(
            "config_hash",
            expected.config_hash.to_string(),
            found.config_hash.to_string(),
        );
    }
    Ok(())
}

// ---- record encoding ----

fn outcome_json(o: RunOutcome) -> String {
    match o {
        RunOutcome::Completed => "{\"t\":\"Completed\"}".into(),
        RunOutcome::Watchdog => "{\"t\":\"Watchdog\"}".into(),
        RunOutcome::StoppedAtDeviation => "{\"t\":\"StoppedAtDeviation\"}".into(),
        RunOutcome::ErtExpired => "{\"t\":\"ErtExpired\"}".into(),
        RunOutcome::WallClockExpired => "{\"t\":\"WallClockExpired\"}".into(),
        RunOutcome::SimAbort => "{\"t\":\"SimAbort\"}".into(),
        RunOutcome::IntegrityViolation(s) => {
            format!(
                "{{\"t\":\"IntegrityViolation\",\"structure\":\"{}\"}}",
                s.ident()
            )
        }
        RunOutcome::Trap(TrapKind::UndefinedInstruction) => {
            "{\"t\":\"Trap\",\"trap\":\"UndefinedInstruction\"}".into()
        }
        RunOutcome::Trap(TrapKind::Memory(m)) => {
            let (tag, addr) = match m {
                MemFault::OutOfRange(a) => ("OutOfRange", a),
                MemFault::WriteToCode(a) => ("WriteToCode", a),
                MemFault::Misaligned(a) => ("Misaligned", a),
                MemFault::ExecuteFault(a) => ("ExecuteFault", a),
            };
            format!("{{\"t\":\"Trap\",\"trap\":\"Memory\",\"mem\":\"{tag}\",\"addr\":{addr}}}")
        }
    }
}

fn outcome_from_json(v: &Json) -> Result<RunOutcome, String> {
    match v.get("t").and_then(Json::as_str) {
        Some("Completed") => Ok(RunOutcome::Completed),
        Some("Watchdog") => Ok(RunOutcome::Watchdog),
        Some("StoppedAtDeviation") => Ok(RunOutcome::StoppedAtDeviation),
        Some("ErtExpired") => Ok(RunOutcome::ErtExpired),
        Some("WallClockExpired") => Ok(RunOutcome::WallClockExpired),
        Some("SimAbort") => Ok(RunOutcome::SimAbort),
        Some("IntegrityViolation") => v
            .get("structure")
            .and_then(Json::as_str)
            .and_then(Structure::from_ident)
            .map(RunOutcome::IntegrityViolation)
            .ok_or_else(|| "bad integrity-violation structure".into()),
        Some("Trap") => match v.get("trap").and_then(Json::as_str) {
            Some("UndefinedInstruction") => Ok(RunOutcome::Trap(TrapKind::UndefinedInstruction)),
            Some("Memory") => {
                let addr = v
                    .get("addr")
                    .and_then(Json::as_u32)
                    .ok_or("bad trap addr")?;
                let m = match v.get("mem").and_then(Json::as_str) {
                    Some("OutOfRange") => MemFault::OutOfRange(addr),
                    Some("WriteToCode") => MemFault::WriteToCode(addr),
                    Some("Misaligned") => MemFault::Misaligned(addr),
                    Some("ExecuteFault") => MemFault::ExecuteFault(addr),
                    _ => return Err("bad memory-fault kind".into()),
                };
                Ok(RunOutcome::Trap(TrapKind::Memory(m)))
            }
            _ => Err("bad trap kind".into()),
        },
        _ => Err("bad outcome tag".into()),
    }
}

fn commit_json(r: &CommitRecord) -> String {
    format!("[{},{},{},{},{}]", r.cycle, r.pc, r.raw, r.ea, r.val)
}

fn commit_from_json(v: &Json) -> Result<CommitRecord, String> {
    let a = v.as_array().ok_or("commit record is not an array")?;
    if a.len() != 5 {
        return Err("commit record needs 5 fields".into());
    }
    let u = |i: usize| a[i].as_u64().ok_or("bad commit field");
    Ok(CommitRecord {
        cycle: u(0)?,
        pc: a[1].as_u32().ok_or("bad pc")?,
        raw: a[2].as_u32().ok_or("bad raw")?,
        ea: a[3].as_u32().ok_or("bad ea")?,
        val: a[4].as_u32().ok_or("bad val")?,
    })
}

/// Serializes one record line (with trailing newline).
pub fn record_line(idx: usize, r: &InjectionResult) -> String {
    let deviation = match &r.deviation {
        None => "null".to_string(),
        Some(d) => format!(
            "{{\"index\":{},\"golden\":{},\"faulty\":{}}}",
            d.index,
            commit_json(&d.golden),
            commit_json(&d.faulty)
        ),
    };
    let output_matches = match r.output_matches {
        None => "null",
        Some(true) => "true",
        Some(false) => "false",
    };
    let abort = match &r.abort_message {
        None => "null".to_string(),
        Some(m) => format!("\"{}\"", escape(m)),
    };
    format!(
        "{{\"i\":{},\"fault\":{{\"structure\":\"{}\",\"bit\":{},\"cycle\":{}}},\"outcome\":{},\"deviation\":{},\"output_matches\":{},\"cycles\":{},\"post\":{},\"abort\":{}}}\n",
        idx,
        r.fault.site.structure.ident(),
        r.fault.site.bit,
        r.fault.cycle,
        outcome_json(r.outcome),
        deviation,
        output_matches,
        r.cycles,
        r.post_inject_cycles,
        abort,
    )
}

/// Parses one record line back into `(fault index, result)`.
pub fn parse_record(line: &str) -> Result<(usize, InjectionResult), String> {
    record_from_json(&parse(line)?)
}

/// Decodes one already-parsed record object back into
/// `(fault index, result)` — the same shape [`record_line`] writes, also
/// used as the per-result element of `avgi-grid` batch frames.
pub fn record_from_json(v: &Json) -> Result<(usize, InjectionResult), String> {
    let idx = v.get("i").and_then(Json::as_u64).ok_or("missing index")? as usize;
    let f = v.get("fault").ok_or("missing fault")?;
    let fault = Fault {
        site: FaultSite {
            structure: f
                .get("structure")
                .and_then(Json::as_str)
                .and_then(Structure::from_ident)
                .ok_or("bad fault structure")?,
            bit: f.get("bit").and_then(Json::as_u64).ok_or("bad fault bit")?,
        },
        cycle: f
            .get("cycle")
            .and_then(Json::as_u64)
            .ok_or("bad fault cycle")?,
    };
    let outcome = outcome_from_json(v.get("outcome").ok_or("missing outcome")?)?;
    let deviation = match v.get("deviation") {
        None | Some(Json::Null) => None,
        Some(d) => Some(Deviation {
            index: d
                .get("index")
                .and_then(Json::as_u64)
                .ok_or("bad deviation index")?,
            golden: commit_from_json(d.get("golden").ok_or("missing golden")?)?,
            faulty: commit_from_json(d.get("faulty").ok_or("missing faulty")?)?,
        }),
    };
    let output_matches = match v.get("output_matches") {
        None | Some(Json::Null) => None,
        Some(b) => Some(b.as_bool().ok_or("bad output_matches")?),
    };
    let abort_message = match v.get("abort") {
        None | Some(Json::Null) => None,
        Some(s) => Some(s.as_str().ok_or("bad abort message")?.to_string()),
    };
    Ok((
        idx,
        InjectionResult {
            fault,
            outcome,
            deviation,
            output_matches,
            cycles: v
                .get("cycles")
                .and_then(Json::as_u64)
                .ok_or("missing cycles")?,
            post_inject_cycles: v.get("post").and_then(Json::as_u64).ok_or("missing post")?,
            abort_message,
        },
    ))
}

/// An open, append-mode campaign journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
    policy: DurabilityPolicy,
    /// Appends since the last `fsync` (only tracked under `FsyncEveryN`).
    unsynced: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path` with the default
    /// [`DurabilityPolicy::Flush`]; see [`Journal::open_with`].
    pub fn open(
        path: &Path,
        key: &CampaignKey,
    ) -> Result<(Journal, BTreeMap<usize, InjectionResult>), CampaignError> {
        Journal::open_with(path, key, DurabilityPolicy::Flush)
    }

    /// Opens (or creates) the journal at `path` for the campaign identified
    /// by `key`, returning the already-journaled results.
    ///
    /// * No file / empty file: a fresh journal is created with a header,
    ///   atomically — the header is written and fsynced under a temporary
    ///   name, then renamed into place, so a crash mid-create leaves either
    ///   no journal or a complete one, never a torn header.
    /// * Existing file: the header must match `key`
    ///   ([`CampaignError::JournalMismatch`] otherwise); records are loaded
    ///   up to the first line that fails its CRC or fails to parse, so both
    ///   a torn tail from an interrupted campaign and a corrupt record
    ///   mid-file are recovered from cleanly (the dropped runs re-execute
    ///   deterministically on resume).
    pub fn open_with(
        path: &Path,
        key: &CampaignKey,
        policy: DurabilityPolicy,
    ) -> Result<(Journal, BTreeMap<usize, InjectionResult>), CampaignError> {
        let mut done = BTreeMap::new();
        let existing = std::fs::read_to_string(path).unwrap_or_default();
        if existing.is_empty() {
            // Fresh journal (no file, or an empty one from an interrupted
            // create): build it under a temp name and rename into place.
            let tmp = std::path::PathBuf::from(format!("{}.tmp", path.display()));
            let mut tmpf = File::create(&tmp)?;
            tmpf.write_all(seal(header_line(key).trim_end()).as_bytes())?;
            tmpf.sync_all()?;
            drop(tmpf);
            std::fs::rename(&tmp, path)?;
            let file = OpenOptions::new().append(true).open(path)?;
            return Ok((
                Journal {
                    file,
                    policy,
                    unsynced: 0,
                },
                done,
            ));
        }
        let file = OpenOptions::new().append(true).open(path)?;
        let mut lines = existing.split_inclusive('\n');
        let mut valid_len = 0u64;
        match lines.next() {
            None | Some("") => unreachable!("existing is non-empty"),
            Some(header) if header.ends_with('\n') => {
                let json = unseal(header.trim_end())
                    .map_err(|e| CampaignError::JournalHeader(format!("bad header: {e}")))?;
                let found = parse_header(json)?;
                check_key(key, &found)?;
                valid_len += header.len() as u64;
                for line in lines {
                    if !line.ends_with('\n') {
                        break; // torn tail: re-run this record
                    }
                    match unseal(line.trim_end()).and_then(parse_record) {
                        Ok((idx, r)) if idx < key.faults => {
                            done.insert(idx, r);
                        }
                        Ok(_) => {}      // stale index beyond the campaign
                        Err(_) => break, // corruption: drop the rest
                    }
                    valid_len += line.len() as u64;
                }
            }
            Some(_) => {
                // Header itself was torn; the journal holds nothing usable.
                return Err(CampaignError::JournalHeader("truncated header line".into()));
            }
        }
        // Self-heal: chop any torn/corrupt tail so fresh appends start on a
        // clean line boundary.
        if valid_len < existing.len() as u64 {
            file.set_len(valid_len)?;
        }
        Ok((
            Journal {
                file,
                policy,
                unsynced: 0,
            },
            done,
        ))
    }

    /// Appends one completed result (CRC-sealed) and flushes it to the OS,
    /// so a process crash immediately after loses nothing; `fsync`s per the
    /// journal's [`DurabilityPolicy`].
    pub fn append(&mut self, idx: usize, r: &InjectionResult) -> std::io::Result<()> {
        self.file
            .write_all(seal(record_line(idx, r).trim_end()).as_bytes())?;
        self.file.flush()?;
        if let DurabilityPolicy::FsyncEveryN(n) = self.policy {
            self.unsynced += 1;
            if self.unsynced >= n.max(1) {
                self.file.sync_data()?;
                self.unsynced = 0;
            }
        }
        Ok(())
    }

    /// Forces everything appended so far to stable storage, regardless of
    /// policy. Called at campaign completion; also useful before handing a
    /// journal path to another process.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.flush()?;
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        // Best-effort: don't let an FsyncEveryN tail ride only in the page
        // cache just because the journal went out of scope.
        if self.unsynced > 0 {
            let _ = self.file.sync_data();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result(outcome: RunOutcome) -> InjectionResult {
        InjectionResult {
            fault: Fault {
                site: FaultSite {
                    structure: Structure::L1DTag,
                    bit: 4321,
                },
                cycle: 987,
            },
            outcome,
            deviation: Some(Deviation {
                index: 7,
                golden: CommitRecord {
                    cycle: 10,
                    pc: 4,
                    raw: 0xdead_beef,
                    ea: 64,
                    val: 5,
                },
                faulty: CommitRecord {
                    cycle: 11,
                    pc: 4,
                    raw: 0xdead_beef,
                    ea: 64,
                    val: 9,
                },
            }),
            output_matches: Some(false),
            cycles: 12345,
            post_inject_cycles: 678,
            abort_message: None,
        }
    }

    #[test]
    fn records_round_trip_for_every_outcome() {
        use avgi_muarch::mem::MemFault;
        let outcomes = [
            RunOutcome::Completed,
            RunOutcome::Watchdog,
            RunOutcome::StoppedAtDeviation,
            RunOutcome::ErtExpired,
            RunOutcome::WallClockExpired,
            RunOutcome::SimAbort,
            RunOutcome::IntegrityViolation(Structure::Rob),
            RunOutcome::Trap(TrapKind::UndefinedInstruction),
            RunOutcome::Trap(TrapKind::Memory(MemFault::OutOfRange(0x1234))),
            RunOutcome::Trap(TrapKind::Memory(MemFault::WriteToCode(8))),
            RunOutcome::Trap(TrapKind::Memory(MemFault::Misaligned(3))),
            RunOutcome::Trap(TrapKind::Memory(MemFault::ExecuteFault(0))),
        ];
        for (i, &outcome) in outcomes.iter().enumerate() {
            let mut r = sample_result(outcome);
            if outcome == RunOutcome::SimAbort {
                r.abort_message = Some("index out of bounds: \"quoted\"\npanic".into());
            }
            let line = record_line(i, &r);
            assert!(line.ends_with('\n'));
            let (idx, back) = parse_record(line.trim_end()).unwrap();
            assert_eq!(idx, i);
            assert_eq!(back, r, "outcome {outcome:?} did not round-trip");
        }
    }

    #[test]
    fn minimal_fields_round_trip() {
        let r = InjectionResult {
            fault: Fault {
                site: FaultSite {
                    structure: Structure::RegFile,
                    bit: 0,
                },
                cycle: 0,
            },
            outcome: RunOutcome::Completed,
            deviation: None,
            output_matches: None,
            cycles: u64::MAX,
            post_inject_cycles: 0,
            abort_message: None,
        };
        let (idx, back) = parse_record(record_line(0, &r).trim_end()).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(back, r);
    }

    #[test]
    fn header_round_trips_and_mismatch_is_detected() {
        let cfg = MuarchConfig::big();
        let key = CampaignKey {
            workload: "sha".into(),
            structure: Structure::Itlb,
            seed: 42,
            mode: RunMode::FirstDeviation {
                ert_window: Some(2000),
            },
            burst_width: 2,
            faults: 64,
            golden_cycles: 9001,
            config_hash: config_hash(&cfg),
        };
        let parsed = parse_header(header_line(&key).trim_end()).unwrap();
        assert_eq!(parsed, key);
        assert!(check_key(&key, &parsed).is_ok());
        let other = CampaignKey {
            seed: 43,
            ..key.clone()
        };
        match check_key(&key, &other) {
            Err(CampaignError::JournalMismatch { field: "seed", .. }) => {}
            other => panic!("expected seed mismatch, got {other:?}"),
        }
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sealed_lines_unseal_and_reject_tampering() {
        let line = seal("{\"i\":3}");
        assert!(line.ends_with('\n'));
        assert_eq!(unseal(line.trim_end()).unwrap(), "{\"i\":3}");
        // Flip one content bit: the checksum no longer matches.
        let mut bytes = line.trim_end().as_bytes().to_vec();
        bytes[3] ^= 0x01;
        let tampered = String::from_utf8(bytes).unwrap();
        assert!(unseal(&tampered).unwrap_err().contains("checksum mismatch"));
        // Damage the suffix itself.
        assert!(unseal("{\"i\":3}").unwrap_err().contains("suffix"));
    }

    #[test]
    fn config_hash_distinguishes_configs() {
        let big = MuarchConfig::big();
        let mut small = MuarchConfig::big();
        small.phys_regs /= 2;
        assert_ne!(config_hash(&big), config_hash(&small));
        assert_eq!(config_hash(&big), config_hash(&MuarchConfig::big()));
    }
}
