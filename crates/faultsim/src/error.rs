//! Typed errors of the campaign engine.
//!
//! The engine distinguishes "the simulated machine crashed" (a run
//! outcome, never an error) from "the campaign infrastructure failed"
//! (this type): checkpoint construction, journal I/O, and journal/key
//! mismatches. Individual-run failures are isolated and recorded as
//! [`crate::InjectionResult`]s, so none of these variants is produced by a
//! faulty run.

use avgi_muarch::run::RunOutcome;
use core::fmt;

/// Why a campaign-engine operation failed.
#[derive(Debug)]
pub enum CampaignError {
    /// The fault-free prefix terminated before a requested snapshot point,
    /// so the checkpoint set cannot be built. `run_campaign` degrades to
    /// checkpoint-free execution when it hits this.
    CheckpointPrefixEnded {
        /// How the prefix run ended.
        outcome: RunOutcome,
        /// Cycle the prefix had reached.
        at_cycle: u64,
        /// Snapshot cycle that was being run to.
        target: u64,
    },
    /// A journal file operation failed.
    Io(std::io::Error),
    /// The journal's header does not parse as a campaign header.
    JournalHeader(String),
    /// The journal on disk was written by a different campaign (key
    /// mismatch); resuming from it would silently mix incompatible results.
    JournalMismatch {
        /// Which key field differs.
        field: &'static str,
        /// Value expected by the running campaign.
        expected: String,
        /// Value found in the journal header.
        found: String,
    },
    /// A shard was asked to run a fault index outside the campaign's
    /// sampled fault list (a corrupt or mismatched work lease).
    ShardIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of faults in the campaign.
        faults: usize,
    },
    /// The campaign's fault list cannot be sampled (e.g. a zero-cycle
    /// golden run).
    Sampling(crate::sampling::SamplingError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::CheckpointPrefixEnded { outcome, at_cycle, target } => write!(
                f,
                "fault-free prefix ended ({outcome:?}) at cycle {at_cycle} before snapshot point {target}"
            ),
            CampaignError::Io(e) => write!(f, "journal I/O failed: {e}"),
            CampaignError::JournalHeader(msg) => write!(f, "malformed journal header: {msg}"),
            CampaignError::JournalMismatch { field, expected, found } => write!(
                f,
                "journal belongs to a different campaign: {field} is {found}, expected {expected}"
            ),
            CampaignError::ShardIndexOutOfRange { index, faults } => write!(
                f,
                "shard lease names fault index {index}, but the campaign samples only {faults} faults"
            ),
            CampaignError::Sampling(e) => write!(f, "fault sampling failed: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Io(e) => Some(e),
            CampaignError::Sampling(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e)
    }
}

impl From<crate::sampling::SamplingError> for CampaignError {
    fn from(e: crate::sampling::SamplingError) -> Self {
        CampaignError::Sampling(e)
    }
}
