//! A hand-rolled, dependency-free JSON subset: enough for the campaign
//! journal's line-oriented records (objects, arrays, strings, integers,
//! booleans, null — no floats, no nested escapes beyond the JSON set).
//!
//! The repository must build fully offline, so this deliberately replaces
//! `serde_json`. Writing is done with plain `format!` at the call sites
//! plus [`escape`]; this module supplies the parser and a tiny value tree.

use core::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any integer (the journal format never writes floats).
    Int(i128),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|n| u32::try_from(n).ok())
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Escapes a string for embedding in a JSON document (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one JSON document, requiring it to span the whole input.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = core::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|b| b as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = core::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_record_shapes() {
        let v = parse(r#"{"i":3,"fault":{"structure":"RegFile","bit":12,"cycle":34},"ok":true,"msg":null,"neg":-5,"arr":[1,2,3]}"#)
            .unwrap();
        assert_eq!(v.get("i").unwrap().as_u64(), Some(3));
        assert_eq!(
            v.get("fault").unwrap().get("structure").unwrap().as_str(),
            Some("RegFile")
        );
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert!(v.get("msg").unwrap().is_null());
        assert_eq!(v.get("neg").unwrap(), &Json::Int(-5));
        assert_eq!(v.get("arr").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in [
            "plain",
            "with \"quotes\"",
            "tab\tnewline\n",
            "back\\slash",
            "ctrl\u{1}",
            "unicode ✓",
        ] {
            let doc = format!("{{\"m\":\"{}\"}}", escape(s));
            let v = parse(&doc).unwrap();
            assert_eq!(v.get("m").unwrap().as_str(), Some(s), "{doc}");
        }
    }

    #[test]
    fn truncated_and_malformed_inputs_error() {
        for bad in [
            "",
            "{",
            "{\"a\":",
            "{\"a\":1",
            "{\"a\":1,",
            "[1,2",
            "\"unterminated",
            "{\"a\" 1}",
            "12x",
            "{\"a\":1}garbage",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn large_u64_values_survive() {
        let n = u64::MAX;
        let v = parse(&format!("{{\"n\":{n}}}")).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(n));
    }
}
