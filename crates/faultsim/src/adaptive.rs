//! Adaptive importance-sampled campaigns (ROADMAP item 3).
//!
//! Uniform Leveugle sampling spends most of a campaign's run budget on
//! Masked outcomes. This module steers later batches toward the
//! (bit-range × cycle-window) regions the live
//! [`MetricsCollector`](crate::telemetry::MetricsCollector) posterior says
//! are likely to produce SDC/Crash outcomes — the Bayesian fault-injection
//! idea — while keeping the AVF/SDC estimators *unbiased* via
//! Horvitz–Thompson reweighting:
//!
//! * The campaign runs in deterministic batches. Warmup batches draw
//!   uniformly (weight 1); every later batch builds a proposal
//!   distribution over the posterior grid's cells and draws from it.
//! * The proposal is a mixture: `q = explore · p + (1 − explore) · q*`,
//!   where `p` is each cell's share of the uniform fault population and
//!   `q* ∝ p · affected-rate` is the empirically optimal proposal for
//!   estimating a population proportion. The `explore` floor keeps every
//!   cell reachable (so weights are bounded by `1/explore`), and a
//!   posterior with *zero* observed affected mass — the all-Masked early
//!   phase — falls back to `q = p`, i.e. exactly uniform sampling.
//! * Each drawn fault carries the weight `w = p(cell) / q(cell)`. Since
//!   `E_q[w·f] = E_p[f]` for any outcome indicator `f`, the weighted
//!   estimators stay unbiased no matter how aggressively the proposal
//!   tilts ([`weighted_estimate`]).
//! * Per-campaign (hence per-structure) Wilson confidence intervals over
//!   the Kish effective sample size drive early stopping: once the AVF
//!   interval's half-width reaches [`AdaptiveConfig::ci_target`], the
//!   remaining budget is left unspent.
//!
//! Determinism contract: the batch schedule is a pure function of
//! `(seed, batch results so far)`. The posterior grid is additive and only
//! read at batch boundaries, so the drawn faults — and therefore results,
//! weights, and the early-stop point — are identical across thread counts
//! and across journal interruptions. `faultsim/tests/adaptive_stats.rs`
//! asserts all of this empirically, and the `adaptive_check` bin re-proves
//! it in CI.

use crate::campaign::{
    build_checkpoints, run_campaign_engine, CampaignConfig, CampaignResult, InjectionResult,
};
use crate::error::CampaignError;
use crate::journal::{CampaignKey, Journal};
use crate::sampling::{wilson_interval, z_value, SamplingError};
use crate::telemetry::{
    outcome_class, CampaignObserver, GridSnapshot, MetricsCollector, OutcomeClass,
};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::{Fault, FaultSite};
use avgi_muarch::trace::GoldenRun;
use avgi_rng::Rng;
use avgi_workloads::Workload;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Parameters of an adaptive campaign.
///
/// `base.faults` is the *budget*: the maximum number of injections. An
/// early-stopping campaign usually spends far less (that is the point);
/// [`AdaptiveReport::runs_saved_pct`] reports the saving.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// The underlying campaign: structure, budget (`faults`), seed, mode,
    /// threads, checkpointing, batching — all engine knobs apply per batch.
    pub base: CampaignConfig,
    /// Injections per adaptive batch (the granularity at which the
    /// proposal re-adapts and the stopping rule is evaluated).
    pub batch_runs: usize,
    /// Uniform (weight-1) batches before adaptation begins.
    pub warmup_batches: usize,
    /// Posterior bins over the structure's bit space.
    pub bit_bins: usize,
    /// Posterior bins over the golden run's cycles.
    pub cycle_bins: usize,
    /// Uniform mixing floor of the proposal, in (0, 1]: bounds every
    /// importance weight by `1/explore` and keeps unvisited cells
    /// reachable. `1.0` disables adaptation entirely.
    pub explore: f64,
    /// Confidence level of the Wilson stopping interval, in (0, 1).
    pub confidence: f64,
    /// Early-stop threshold: stop once the AVF interval's half-width is at
    /// or below this (`None` = always spend the full budget).
    pub ci_target: Option<f64>,
}

impl AdaptiveConfig {
    /// Adaptive defaults over `base`: 64-run batches, one uniform warmup
    /// batch, an 8×8 posterior grid, a 0.25 explore floor, and 95 %
    /// Wilson intervals with no early stop.
    pub fn new(base: CampaignConfig) -> Self {
        AdaptiveConfig {
            base,
            batch_runs: 64,
            warmup_batches: 1,
            bit_bins: 8,
            cycle_bins: 8,
            explore: 0.25,
            confidence: 0.95,
            ci_target: None,
        }
    }

    /// Sets the per-batch run count.
    pub fn with_batch_runs(mut self, runs: usize) -> Self {
        self.batch_runs = runs;
        self
    }

    /// Sets the posterior grid resolution.
    pub fn with_bins(mut self, bit_bins: usize, cycle_bins: usize) -> Self {
        self.bit_bins = bit_bins;
        self.cycle_bins = cycle_bins;
        self
    }

    /// Sets the uniform mixing floor.
    pub fn with_explore(mut self, explore: f64) -> Self {
        self.explore = explore;
        self
    }

    /// Sets the stopping confidence level.
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }

    /// Enables CI-driven early stopping at the given half-width target.
    pub fn with_ci_target(mut self, target: f64) -> Self {
        self.ci_target = Some(target);
        self
    }
}

/// A proposal distribution over the posterior grid's cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Proposal {
    /// Per-cell draw probability (sums to 1).
    pub q: Vec<f64>,
    /// Per-cell Horvitz–Thompson weight `p(cell) / q(cell)`.
    pub weight: Vec<f64>,
    /// Whether the posterior actually tilted the proposal. `false` means
    /// the zero-affected-mass fallback fired and `q` is exactly the
    /// uniform population distribution (all weights 1).
    pub adapted: bool,
}

/// Builds the importance-sampling proposal for the next batch from a
/// posterior snapshot (see the module docs for the mixture rule).
///
/// `explore` must lie in (0, 1]. A posterior with no observed affected
/// outcome anywhere — including a completely empty grid — yields the
/// uniform proposal with unit weights, so degenerate early phases can
/// never produce unbounded or zero-probability draws.
pub fn build_proposal(grid: &GridSnapshot, explore: f64) -> Proposal {
    assert!(
        explore > 0.0 && explore <= 1.0,
        "explore floor must lie in (0, 1], got {explore}"
    );
    let cells = grid.cells();
    let p: Vec<f64> = (0..cells).map(|c| grid.population_mass(c)).collect();
    let tilted: Vec<f64> = (0..cells)
        .map(|c| {
            let rate = if grid.runs[c] > 0 {
                grid.affected[c] as f64 / grid.runs[c] as f64
            } else {
                0.0
            };
            p[c] * rate
        })
        .collect();
    let mass: f64 = tilted.iter().sum();
    let has_signal = mass.is_finite() && mass > 0.0;
    if !has_signal || explore >= 1.0 {
        return Proposal {
            q: p.clone(),
            weight: vec![1.0; cells],
            adapted: false,
        };
    }
    let q: Vec<f64> = (0..cells)
        .map(|c| explore * p[c] + (1.0 - explore) * tilted[c] / mass)
        .collect();
    let weight: Vec<f64> = (0..cells).map(|c| p[c] / q[c]).collect();
    Proposal {
        q,
        weight,
        adapted: true,
    }
}

/// Horvitz–Thompson outcome estimates with their Wilson stopping interval.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedEstimate {
    /// Samples behind the estimate.
    pub runs: usize,
    /// HT estimate of the Masked fraction.
    pub masked: f64,
    /// HT estimate of the SDC fraction.
    pub sdc: f64,
    /// HT estimate of the Crash fraction.
    pub crash: f64,
    /// HT estimate of the AVF (SDC + Crash).
    pub avf: f64,
    /// Kish effective sample size `(Σw)² / Σw²` — equals `runs` under
    /// uniform weights, shrinks as weights disperse.
    pub n_eff: f64,
    /// Confidence level of the interval below.
    pub confidence: f64,
    /// Wilson interval on the AVF at `confidence` over `n_eff` samples.
    pub avf_interval: (f64, f64),
}

impl WeightedEstimate {
    /// Half the AVF interval's width — the quantity the stopping rule
    /// compares against [`AdaptiveConfig::ci_target`].
    pub fn half_width(&self) -> f64 {
        (self.avf_interval.1 - self.avf_interval.0) / 2.0
    }
}

/// Computes the Horvitz–Thompson estimates over `(results, weights)` pairs
/// at the given confidence level.
///
/// The estimator of each outcome fraction is `(1/n) Σ wᵢ·[class(rᵢ)]`,
/// which is unbiased for the uniform-population fraction whenever the
/// weights are true likelihood ratios (as [`build_proposal`] guarantees).
/// Estimates are *not* self-normalized — dividing by `Σw` instead of `n`
/// would trade a little variance for bias, and this PR's whole test
/// harness exists to prove the unbiased property.
pub fn weighted_estimate(
    results: &[InjectionResult],
    weights: &[f64],
    confidence: f64,
) -> Result<WeightedEstimate, SamplingError> {
    z_value(confidence)?; // validate before any arithmetic
    assert_eq!(
        results.len(),
        weights.len(),
        "every result needs its importance weight"
    );
    if results.is_empty() {
        return Err(SamplingError::ZeroSamples);
    }
    let n = results.len() as f64;
    let (mut masked, mut sdc, mut crash) = (0.0f64, 0.0f64, 0.0f64);
    let (mut sum_w, mut sum_w2) = (0.0f64, 0.0f64);
    for (r, &w) in results.iter().zip(weights) {
        sum_w += w;
        sum_w2 += w * w;
        match outcome_class(r) {
            OutcomeClass::Masked => masked += w,
            OutcomeClass::Sdc => sdc += w,
            OutcomeClass::Crash => crash += w,
        }
    }
    let n_eff = if sum_w2 > 0.0 {
        sum_w * sum_w / sum_w2
    } else {
        0.0
    };
    let avf = (sdc + crash) / n;
    let avf_interval = wilson_interval(avf, n_eff.max(1.0), confidence)?;
    Ok(WeightedEstimate {
        runs: results.len(),
        masked: masked / n,
        sdc: sdc / n,
        crash: crash / n,
        avf,
        n_eff,
        confidence,
        avf_interval,
    })
}

/// The outcome of an adaptive campaign.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// The executed runs, in schedule order (batch by batch), wrapped in
    /// the standard campaign result shape.
    pub campaign: CampaignResult,
    /// Per-run Horvitz–Thompson weights, parallel to `campaign.results`.
    pub weights: Vec<f64>,
    /// Batches executed.
    pub batches: usize,
    /// The configured run budget (`base.faults`).
    pub budget: usize,
    /// Whether the CI target stopped the campaign before the budget ran
    /// out.
    pub stopped_early: bool,
    /// Final estimates over everything executed.
    pub estimate: WeightedEstimate,
    /// Final posterior state (the grid the last proposal was built from,
    /// plus the last batch's tallies).
    pub grid: GridSnapshot,
}

impl AdaptiveReport {
    /// Runs actually executed.
    pub fn runs_used(&self) -> usize {
        self.campaign.results.len()
    }

    /// Budget left unspent by early stopping, as a percentage.
    pub fn runs_saved_pct(&self) -> f64 {
        if self.budget == 0 {
            return 0.0;
        }
        100.0 * (self.budget - self.runs_used()) as f64 / self.budget as f64
    }
}

/// Fans engine hooks out to the driver's posterior collector and the
/// user's observer (if any), so attaching telemetry to an adaptive
/// campaign does not displace the posterior the proposal feeds on.
struct Tee {
    posterior: Arc<MetricsCollector>,
    user: Option<Arc<dyn CampaignObserver>>,
}

impl CampaignObserver for Tee {
    fn on_campaign_start(&self, structure: avgi_muarch::fault::Structure, planned: usize) {
        self.posterior.on_campaign_start(structure, planned);
        if let Some(u) = &self.user {
            u.on_campaign_start(structure, planned);
        }
    }
    fn on_run(
        &self,
        structure: avgi_muarch::fault::Structure,
        result: &InjectionResult,
        wall: Duration,
    ) {
        self.posterior.on_run(structure, result, wall);
        if let Some(u) = &self.user {
            u.on_run(structure, result, wall);
        }
    }
    fn on_resumed(&self, structure: avgi_muarch::fault::Structure, result: &InjectionResult) {
        self.posterior.on_resumed(structure, result);
        if let Some(u) = &self.user {
            u.on_resumed(structure, result);
        }
    }
    fn on_worker_pool(&self, workers: usize) {
        self.posterior.on_worker_pool(workers);
        if let Some(u) = &self.user {
            u.on_worker_pool(workers);
        }
    }
    fn on_retry(&self, structure: avgi_muarch::fault::Structure) {
        self.posterior.on_retry(structure);
        if let Some(u) = &self.user {
            u.on_retry(structure);
        }
    }
    fn on_batching_disabled(&self, reason: &str) {
        self.posterior.on_batching_disabled(reason);
        if let Some(u) = &self.user {
            u.on_batching_disabled(reason);
        }
    }
    fn on_campaign_end(&self, structure: avgi_muarch::fault::Structure) {
        self.posterior.on_campaign_end(structure);
        if let Some(u) = &self.user {
            u.on_campaign_end(structure);
        }
    }
}

/// Derives batch `k`'s RNG seed from the campaign seed (SplitMix64-style
/// mixing), so batches draw independent deterministic streams and inserting
/// a batch never shifts another batch's draws.
fn batch_seed(seed: u64, batch: usize) -> u64 {
    let mut x = seed ^ (batch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Draws a cell index from the proposal's cumulative distribution.
fn draw_cell(q: &[f64], rng: &mut Rng) -> usize {
    let x = rng.gen_f64();
    let mut cum = 0.0;
    for (i, &qi) in q.iter().enumerate() {
        cum += qi;
        if x < cum {
            return i;
        }
    }
    q.len() - 1
}

/// Draws one batch of faults. Warmup batches sample the whole site space
/// uniformly (weight 1); adaptive batches sample cells from the proposal
/// and sites uniformly within the cell (weight `p/q` of the cell).
fn draw_batch(
    grid: &GridSnapshot,
    proposal: Option<&Proposal>,
    structure: avgi_muarch::fault::Structure,
    n: usize,
    rng: &mut Rng,
) -> (Vec<Fault>, Vec<f64>) {
    let mut faults = Vec::with_capacity(n);
    let mut weights = Vec::with_capacity(n);
    for _ in 0..n {
        match proposal {
            None => {
                faults.push(Fault {
                    site: FaultSite {
                        structure,
                        bit: rng.gen_range_u64(grid.bits),
                    },
                    cycle: rng.gen_range_u64(grid.cycles),
                });
                weights.push(1.0);
            }
            Some(p) => {
                let cell = draw_cell(&p.q, rng);
                let (b_lo, b_hi) = grid.bit_range(cell);
                let (c_lo, c_hi) = grid.cycle_range(cell);
                faults.push(Fault {
                    site: FaultSite {
                        structure,
                        bit: b_lo + rng.gen_range_u64(b_hi - b_lo),
                    },
                    cycle: c_lo + rng.gen_range_u64(c_hi - c_lo),
                });
                weights.push(p.weight[cell]);
            }
        }
    }
    (faults, weights)
}

/// Runs an adaptive campaign (see the module docs).
///
/// Fails with [`CampaignError::Sampling`] when the configuration is
/// statistically meaningless: a confidence level outside (0, 1), a
/// non-positive CI target, or a zero budget.
pub fn run_adaptive(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    acfg: &AdaptiveConfig,
) -> Result<AdaptiveReport, CampaignError> {
    run_adaptive_engine(workload, cfg, golden, acfg, None)
}

/// Runs an adaptive campaign journaled to `path`, resuming mid-adaptation.
///
/// The journal is the standard campaign journal keyed by the *base*
/// campaign (budget as the fault count). Resume replays journaled results
/// batch by batch: the posterior is rebuilt from each replayed batch in
/// schedule order, so the regenerated proposals — and therefore the
/// regenerated fault draws — are bit-identical to the interrupted run's,
/// and only missing runs execute. The adaptive knobs are not part of the
/// journal header; changing them between runs changes the drawn faults and
/// is caught by the per-record fault cross-check
/// ([`CampaignError::JournalMismatch`]), exactly like a corrupted journal.
pub fn run_adaptive_journaled(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    acfg: &AdaptiveConfig,
    path: &Path,
) -> Result<AdaptiveReport, CampaignError> {
    let key = CampaignKey::new(workload.name, cfg, golden.cycles, &acfg.base);
    let (journal, done) = Journal::open(path, &key)?;
    run_adaptive_engine(
        workload,
        cfg,
        golden,
        acfg,
        Some((Mutex::new(journal), done)),
    )
}

fn run_adaptive_engine(
    workload: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    acfg: &AdaptiveConfig,
    journal: Option<(Mutex<Journal>, BTreeMap<usize, InjectionResult>)>,
) -> Result<AdaptiveReport, CampaignError> {
    z_value(acfg.confidence)?;
    if let Some(t) = acfg.ci_target {
        if !(t.is_finite() && t > 0.0) {
            return Err(SamplingError::InvalidMargin.into());
        }
    }
    let budget = acfg.base.faults;
    if budget == 0 {
        return Err(SamplingError::ZeroSamples.into());
    }
    let bits = acfg.base.structure.bit_count(cfg);
    if golden.cycles == 0 {
        return Err(SamplingError::EmptyGoldenRun.into());
    }

    let (checkpoints, mut warnings) = build_checkpoints(workload, cfg, golden, &acfg.base);
    let posterior = Arc::new(MetricsCollector::with_site_grid(
        bits,
        golden.cycles,
        acfg.bit_bins,
        acfg.cycle_bins,
    ));
    let mut ecfg = acfg.base.clone();
    ecfg.observer = Some(Arc::new(Tee {
        posterior: posterior.clone(),
        user: acfg.base.observer.clone(),
    }));

    let batch_runs = acfg.batch_runs.max(1);
    let mut results: Vec<InjectionResult> = Vec::with_capacity(budget);
    let mut weights: Vec<f64> = Vec::with_capacity(budget);
    let mut batches = 0usize;
    let mut stopped_early = false;
    let mut estimate: Option<WeightedEstimate> = None;

    while results.len() < budget {
        let start = results.len();
        let m = (budget - start).min(batch_runs);
        let mut rng = Rng::seed_from_u64(batch_seed(acfg.base.seed, batches));
        // The proposal reads the posterior *before* this batch runs: the
        // grid only ever reflects completed batches, which is what makes
        // the schedule thread-count- and resume-invariant.
        let grid = posterior
            .grid_snapshot()
            .expect("posterior collector always carries a grid");
        let proposal =
            (batches >= acfg.warmup_batches).then(|| build_proposal(&grid, acfg.explore));
        let (faults, batch_weights) =
            draw_batch(&grid, proposal.as_ref(), acfg.base.structure, m, &mut rng);

        // Resume: journaled results for this batch's global indices replay
        // instead of re-executing — after cross-checking that the journaled
        // fault is the fault the schedule regenerates for that index.
        let mut local_done = BTreeMap::new();
        if let Some((_, done)) = &journal {
            for (li, fault) in faults.iter().enumerate() {
                if let Some(r) = done.get(&(start + li)) {
                    if r.fault != *fault {
                        return Err(CampaignError::JournalMismatch {
                            field: "fault",
                            expected: format!("{fault:?}"),
                            found: format!("{:?}", r.fault),
                        });
                    }
                    local_done.insert(li, r.clone());
                }
            }
        }

        let (batch_results, engine_warnings) = run_campaign_engine(
            workload,
            cfg,
            golden,
            &ecfg,
            &faults,
            local_done,
            journal.as_ref().map(|(j, _)| j),
            start,
            checkpoints.as_ref(),
        )?;
        for w in engine_warnings {
            if !warnings.contains(&w) {
                warnings.push(w);
            }
        }
        results.extend(batch_results);
        weights.extend(batch_weights);
        batches += 1;

        let est = weighted_estimate(&results, &weights, acfg.confidence)?;
        let target_met = acfg
            .ci_target
            .is_some_and(|t| batches > acfg.warmup_batches && est.half_width() <= t);
        estimate = Some(est);
        if target_met {
            stopped_early = results.len() < budget;
            break;
        }
    }

    Ok(AdaptiveReport {
        campaign: CampaignResult {
            workload: workload.name.to_string(),
            structure: acfg.base.structure,
            mode: acfg.base.mode,
            golden_cycles: golden.cycles,
            results,
            warnings,
        },
        weights,
        batches,
        budget,
        stopped_early,
        estimate: estimate.expect("budget > 0 executes at least one batch"),
        grid: posterior
            .grid_snapshot()
            .expect("posterior collector always carries a grid"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::SiteGrid;

    fn grid(bits: u64, cycles: u64, runs: &[u64], affected: &[u64]) -> GridSnapshot {
        let mut g = SiteGrid::new(bits, cycles, 2, 2).snapshot();
        g.runs = runs.to_vec();
        g.affected = affected.to_vec();
        g
    }

    #[test]
    fn zero_affected_mass_falls_back_to_uniform() {
        // All-Masked posterior (and the completely unexplored grid): the
        // proposal is exactly the population distribution, all weights 1.
        for runs in [[0u64, 0, 0, 0], [10, 10, 10, 10]] {
            let g = grid(100, 40, &runs, &[0, 0, 0, 0]);
            let p = build_proposal(&g, 0.25);
            assert!(!p.adapted);
            assert!(p.weight.iter().all(|&w| w == 1.0));
            for (c, &q) in p.q.iter().enumerate() {
                assert!((q - g.population_mass(c)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn adapted_proposal_is_a_distribution_with_bounded_true_weights() {
        let g = grid(100, 40, &[10, 10, 10, 10], &[8, 0, 1, 0]);
        let explore = 0.25;
        let p = build_proposal(&g, explore);
        assert!(p.adapted);
        let total: f64 = p.q.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "q sums to {total}");
        for (c, (&q, &w)) in p.q.iter().zip(&p.weight).enumerate() {
            assert!(q > 0.0, "cell {c} starved");
            assert!(
                w <= 1.0 / explore + 1e-12,
                "cell {c} weight {w} exceeds 1/explore"
            );
            // w is the true likelihood ratio.
            assert!((w - g.population_mass(c) / q).abs() < 1e-12);
        }
        // The hottest cell gets more than its population share.
        assert!(p.q[0] > g.population_mass(0));
    }

    #[test]
    fn unit_explore_floor_disables_adaptation() {
        let g = grid(100, 40, &[10, 10, 10, 10], &[9, 0, 0, 0]);
        let p = build_proposal(&g, 1.0);
        assert!(!p.adapted, "explore = 1 must mean pure uniform sampling");
    }

    #[test]
    fn importance_weights_preserve_expectations_exactly() {
        // Σ_cell q(cell)·w(cell)·f(cell) == Σ_cell p(cell)·f(cell) for any
        // per-cell f — the algebraic identity unbiasedness rests on.
        let g = grid(1000, 400, &[50, 3, 20, 1], &[40, 0, 2, 1]);
        let p = build_proposal(&g, 0.3);
        let f = [0.9, 0.1, 0.4, 0.7]; // arbitrary per-cell outcome rates
        let under_q: f64 = (0..4).map(|c| p.q[c] * p.weight[c] * f[c]).sum();
        let under_p: f64 = (0..4).map(|c| g.population_mass(c) * f[c]).sum();
        assert!((under_q - under_p).abs() < 1e-12, "{under_q} vs {under_p}");
    }

    #[test]
    fn batch_seeds_are_distinct_and_deterministic() {
        let seeds: Vec<u64> = (0..64).map(|k| batch_seed(42, k)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "batch seed collision");
        assert_eq!(batch_seed(42, 7), batch_seed(42, 7));
        assert_ne!(batch_seed(42, 7), batch_seed(43, 7));
    }

    #[test]
    fn draw_cell_respects_the_distribution() {
        let q = [0.7, 0.1, 0.1, 0.1];
        let mut rng = Rng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[draw_cell(&q, &mut rng)] += 1;
        }
        assert!(
            (2600..3000).contains(&counts[0]),
            "cell 0 drawn {} times of 4000",
            counts[0]
        );
        assert!(counts[1] > 0 && counts[2] > 0 && counts[3] > 0);
    }
}
