//! Live campaign observability: lock-free metrics, run-latency histograms,
//! and structured telemetry snapshots.
//!
//! A 2,000-fault campaign (the paper's §II.D operating point) can run for
//! minutes; without telemetry it is a black box until the final
//! [`CampaignResult`](crate::CampaignResult) lands. This module makes the
//! in-flight state observable, in the spirit of ZOFI's and CHAOS's live
//! campaign statistics:
//!
//! * [`CampaignObserver`] — the hook trait the campaign engine drives. All
//!   methods have empty defaults, so observers implement only what they
//!   need; [`NullObserver`] is the no-op used when no observer is attached.
//! * [`MetricsCollector`] — the default observer: per-worker updates land
//!   on shared atomics (relaxed; only counter totals matter), so the hot
//!   injection path pays a handful of uncontended `fetch_add`s per run and
//!   no locks. Tracks per-structure run counts, per-outcome tallies,
//!   optional per-class tallies (e.g. IMM classes, via a pluggable
//!   classifier), abort/retry counts, and two log2-bucket histograms:
//!   post-injection simulated cycles and wall-clock run latency.
//! * [`MetricsSnapshot`] — a consistent-enough point-in-time copy of the
//!   counters with derived rates (runs/sec, ETA), a human-readable
//!   [`progress_line`](MetricsSnapshot::progress_line), and machine-readable
//!   JSON ([`to_json`](MetricsSnapshot::to_json) for dashboards,
//!   [`deterministic_counters_json`](MetricsSnapshot::deterministic_counters_json)
//!   for reproducibility checks).
//! * [`ProgressObserver`] — wraps a collector and emits a snapshot to a
//!   sink at a configurable interval, plus a guaranteed final snapshot at
//!   campaign end.
//!
//! Determinism contract: every counter except wall-clock-derived data
//! (`elapsed`, `runs_per_sec`, `eta`, the wall-latency histogram) and the
//! `resumed` bookkeeping count is a pure function of the campaign's
//! (seed, fault list, mode) — identical across thread counts and across
//! journal interruptions. `deterministic_counters_json` serializes exactly
//! that subset.

use crate::campaign::InjectionResult;
use avgi_muarch::fault::Structure;
use avgi_muarch::run::RunOutcome;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of log2 histogram buckets: bucket 0 holds the value 0, bucket
/// `k` (1..=64) holds values in `[2^(k-1), 2^k)`.
pub const HIST_BUCKETS: usize = 65;

/// The bucket index for a value (see [`HIST_BUCKETS`]).
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The `[lo, hi)` value range of bucket `i`; bucket 64's upper bound
/// saturates at `u64::MAX`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < HIST_BUCKETS, "bucket index out of range: {i}");
    if i == 0 {
        (0, 1)
    } else {
        let lo = 1u64 << (i - 1);
        let hi = if i == 64 { u64::MAX } else { 1u64 << i };
        (lo, hi)
    }
}

/// A lock-free log2-bucket histogram of `u64` samples.
///
/// Recording is one relaxed `fetch_add`; buckets trade resolution for a
/// fixed footprint (65 counters cover the full `u64` range), which is the
/// right shape for latency-style distributions spanning many decades.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A plain-data copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// One count per bucket (length [`HIST_BUCKETS`]).
    pub counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// An all-zero histogram (the identity of [`merge`](Self::merge)).
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; HIST_BUCKETS],
        }
    }

    /// Adds another histogram's counts into this one, bucket by bucket.
    /// Tolerates trimmed (shorter) count vectors on either side.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether no sample was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// An upper bound on the `q`-quantile (0..=1): the exclusive upper
    /// edge of the first bucket at which the cumulative count reaches
    /// `ceil(q * total)`. `None` on an empty histogram.
    pub fn approx_quantile(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let need = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            cum += n;
            if cum >= need {
                return Some(bucket_bounds(i).1);
            }
        }
        Some(u64::MAX)
    }

    /// The bucket counts as a JSON array, trimmed after the last non-zero
    /// bucket (an empty histogram serializes as `[]`).
    pub fn to_json(&self) -> String {
        let last = self
            .counts
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |i| i + 1);
        let mut out = String::from("[");
        for (i, n) in self.counts[..last].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&n.to_string());
        }
        out.push(']');
        out
    }
}

/// Stable labels for the [`RunOutcome`] families, in tally order.
pub const OUTCOME_LABELS: [&str; 8] = [
    "Completed",
    "Trap",
    "IntegrityViolation",
    "Watchdog",
    "StoppedAtDeviation",
    "ErtExpired",
    "WallClockExpired",
    "SimAbort",
];

/// Index of `SimAbort` in [`OUTCOME_LABELS`] (the campaign abort counter).
pub const SIM_ABORT_INDEX: usize = 7;

fn outcome_index(o: RunOutcome) -> usize {
    match o {
        RunOutcome::Completed => 0,
        RunOutcome::Trap(_) => 1,
        RunOutcome::IntegrityViolation(_) => 2,
        RunOutcome::Watchdog => 3,
        RunOutcome::StoppedAtDeviation => 4,
        RunOutcome::ErtExpired => 5,
        RunOutcome::WallClockExpired => 6,
        RunOutcome::SimAbort => SIM_ABORT_INDEX,
    }
}

fn structure_index(s: Structure) -> usize {
    Structure::all()
        .iter()
        .position(|&x| x == s)
        .expect("Structure::all() covers every structure")
}

/// The three-way final-outcome classification the estimators work in:
/// AVF = P(Sdc) + P(Crash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutcomeClass {
    /// The fault had no architecturally visible effect.
    Masked,
    /// The run finished with wrong output (or was stopped at a commit-trace
    /// deviation, the early-stop proxy for reaching the software).
    Sdc,
    /// The run ended in the crash family (trap, integrity violation,
    /// watchdog, wall-clock expiry, or an isolated simulator abort).
    Crash,
}

/// Classifies one injection into [`OutcomeClass`] — total over every
/// [`RunOutcome`], so adaptive estimators can consume any run mode.
///
/// End-to-end outcomes map exactly as `avgi-core`'s final-effect analysis
/// does. Early-stopped runs (first-deviation / ERT modes) have no final
/// effect there; here a run stopped *at* a deviation counts `Sdc` (the
/// fault demonstrably reached architectural state) and an ERT expiry with
/// no deviation counts `Masked` — the conservative proxies the adaptive
/// proposal needs to steer with.
pub fn outcome_class(r: &InjectionResult) -> OutcomeClass {
    match r.outcome {
        RunOutcome::Completed => match r.output_matches {
            Some(false) => OutcomeClass::Sdc,
            _ => OutcomeClass::Masked,
        },
        RunOutcome::Trap(_)
        | RunOutcome::IntegrityViolation(_)
        | RunOutcome::Watchdog
        | RunOutcome::WallClockExpired
        | RunOutcome::SimAbort => OutcomeClass::Crash,
        RunOutcome::StoppedAtDeviation | RunOutcome::ErtExpired => {
            if r.deviation.is_some() {
                OutcomeClass::Sdc
            } else {
                OutcomeClass::Masked
            }
        }
    }
}

/// Lock-free per-(bit-range × cycle-window) outcome tallies for one
/// structure — the posterior substrate of adaptive importance sampling.
///
/// The structure's flat bit space is split into `bit_bins` equal ranges and
/// the golden execution into `cycle_bins` windows; each cell tallies how
/// many injections landed there and how many of those were *affected*
/// (non-[`Masked`](OutcomeClass::Masked)). Recording is two relaxed
/// `fetch_add`s, so the grid rides the injection hot path next to the other
/// collector counters. Cell counts are additive and order-independent,
/// which makes a snapshot taken at a batch boundary a deterministic
/// function of the set of results seen — identical across thread counts
/// and across journal resumes.
#[derive(Debug)]
pub struct SiteGrid {
    bits: u64,
    cycles: u64,
    bit_bins: usize,
    cycle_bins: usize,
    runs: Vec<AtomicU64>,
    affected: Vec<AtomicU64>,
}

impl SiteGrid {
    /// A zeroed grid over `bits × cycles` sites. Bin counts are clamped to
    /// at least 1 and at most the axis size (a 7-bit structure cannot carry
    /// 8 distinct bit ranges).
    pub fn new(bits: u64, cycles: u64, bit_bins: usize, cycle_bins: usize) -> Self {
        assert!(bits > 0 && cycles > 0, "grid over an empty site space");
        let bit_bins = (bit_bins.max(1) as u64).min(bits) as usize;
        let cycle_bins = (cycle_bins.max(1) as u64).min(cycles) as usize;
        let cells = bit_bins * cycle_bins;
        SiteGrid {
            bits,
            cycles,
            bit_bins,
            cycle_bins,
            runs: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            affected: (0..cells).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The cell index a fault lands in (row = bit range, column = cycle
    /// window). Out-of-range sites clamp into the last bin — ill-formed
    /// faults are the panic-isolation path's business, not the tally's.
    pub fn cell_of(&self, bit: u64, cycle: u64) -> usize {
        let b =
            ((bit.min(self.bits - 1) as u128 * self.bit_bins as u128) / self.bits as u128) as usize;
        let c = ((cycle.min(self.cycles - 1) as u128 * self.cycle_bins as u128)
            / self.cycles as u128) as usize;
        b * self.cycle_bins + c
    }

    /// Tallies one result into its cell.
    pub fn record(&self, r: &InjectionResult) {
        let cell = self.cell_of(r.fault.site.bit, r.fault.cycle);
        self.runs[cell].fetch_add(1, Ordering::Relaxed);
        if outcome_class(r) != OutcomeClass::Masked {
            self.affected[cell].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the cell tallies.
    pub fn snapshot(&self) -> GridSnapshot {
        GridSnapshot {
            bits: self.bits,
            cycles: self.cycles,
            bit_bins: self.bit_bins,
            cycle_bins: self.cycle_bins,
            runs: self
                .runs
                .iter()
                .map(|n| n.load(Ordering::Relaxed))
                .collect(),
            affected: self
                .affected
                .iter()
                .map(|n| n.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A plain-data copy of a [`SiteGrid`] — the posterior state an adaptive
/// driver builds its next proposal distribution from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSnapshot {
    /// Structure bit-space size the grid covers.
    pub bits: u64,
    /// Golden-run cycle count the grid covers.
    pub cycles: u64,
    /// Bit-axis bins (rows).
    pub bit_bins: usize,
    /// Cycle-axis bins (columns).
    pub cycle_bins: usize,
    /// Injections tallied per cell (`bit_bins * cycle_bins`, row-major).
    pub runs: Vec<u64>,
    /// Affected (non-Masked) injections per cell.
    pub affected: Vec<u64>,
}

impl GridSnapshot {
    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.bit_bins * self.cycle_bins
    }

    /// The `[lo, hi)` bit range of a cell's row.
    pub fn bit_range(&self, cell: usize) -> (u64, u64) {
        let row = (cell / self.cycle_bins) as u128;
        let bins = self.bit_bins as u128;
        let bits = self.bits as u128;
        ((row * bits / bins) as u64, ((row + 1) * bits / bins) as u64)
    }

    /// The `[lo, hi)` cycle range of a cell's column.
    pub fn cycle_range(&self, cell: usize) -> (u64, u64) {
        let col = (cell % self.cycle_bins) as u128;
        let bins = self.cycle_bins as u128;
        let cycles = self.cycles as u128;
        (
            (col * cycles / bins) as u64,
            ((col + 1) * cycles / bins) as u64,
        )
    }

    /// The fraction of the uniform fault population living in a cell.
    pub fn population_mass(&self, cell: usize) -> f64 {
        let (b_lo, b_hi) = self.bit_range(cell);
        let (c_lo, c_hi) = self.cycle_range(cell);
        ((b_hi - b_lo) as f64 / self.bits as f64) * ((c_hi - c_lo) as f64 / self.cycles as f64)
    }

    /// Total injections tallied.
    pub fn total_runs(&self) -> u64 {
        self.runs.iter().sum()
    }

    /// Total affected injections tallied.
    pub fn total_affected(&self) -> u64 {
        self.affected.iter().sum()
    }

    /// The grid as one JSON object — deterministic (pure tally content), so
    /// two byte-equal documents mean bit-identical posterior state.
    pub fn to_json(&self) -> String {
        let list = |v: &[u64]| {
            let mut out = String::from("[");
            for (i, n) in v.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&n.to_string());
            }
            out.push(']');
            out
        };
        format!(
            "{{\"bits\":{},\"cycles\":{},\"bit_bins\":{},\"cycle_bins\":{},\
             \"runs\":{},\"affected\":{}}}",
            self.bits,
            self.cycles,
            self.bit_bins,
            self.cycle_bins,
            list(&self.runs),
            list(&self.affected),
        )
    }
}

/// Hooks the campaign engine drives while a campaign executes.
///
/// All methods have empty default bodies. Implementations must be cheap
/// and non-blocking: `on_run` sits on the injection hot path of every
/// worker thread.
pub trait CampaignObserver: Send + Sync {
    /// A campaign is starting: `planned_runs` injections will be accounted
    /// for (freshly executed or replayed from a journal).
    fn on_campaign_start(&self, _structure: Structure, _planned_runs: usize) {}

    /// One injected run finished executing, taking `wall` of host time.
    fn on_run(&self, _structure: Structure, _result: &InjectionResult, _wall: Duration) {}

    /// One already-journaled result was replayed during a resume (no
    /// simulation happened; there is no meaningful wall time).
    fn on_resumed(&self, _structure: Structure, _result: &InjectionResult) {}

    /// The engine resolved its worker pool: `workers` threads will execute
    /// this campaign (the *effective* count — a configured `0` has already
    /// been resolved to the available cores and clamped to the pending run
    /// count, so telemetry never echoes the raw configuration value).
    fn on_worker_pool(&self, _workers: usize) {}

    /// A panicking run is being retried without its checkpoint.
    fn on_retry(&self, _structure: Structure) {}

    /// Shared-prefix batching was requested (`batch > 1`) but the engine
    /// had to fall back to the classic per-run path — `reason` names why
    /// (wall-clock budget set, or no checkpoint set available). Fired once
    /// per affected engine invocation so campaigns can see which execution
    /// path they actually got.
    fn on_batching_disabled(&self, _reason: &str) {}

    /// The campaign finished (all planned runs accounted for).
    fn on_campaign_end(&self, _structure: Structure) {}
}

/// The no-op observer used when a campaign has none attached.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl CampaignObserver for NullObserver {}

type Classifier = dyn Fn(&InjectionResult) -> usize + Send + Sync;

/// The default [`CampaignObserver`]: lock-free per-worker counters
/// aggregated on shared atomics.
///
/// One collector can observe several consecutive campaigns (e.g. a
/// 12-structure report grid); `planned` then accumulates across them and
/// the per-structure counts keep the campaigns apart.
pub struct MetricsCollector {
    started: Instant,
    planned: AtomicU64,
    completed: AtomicU64,
    resumed: AtomicU64,
    retries: AtomicU64,
    batching_disabled: AtomicU64,
    workers: AtomicU64,
    outcomes: [AtomicU64; OUTCOME_LABELS.len()],
    structures: [AtomicU64; 12],
    class_labels: Vec<&'static str>,
    class_counts: Vec<AtomicU64>,
    classifier: Option<Box<Classifier>>,
    site_grid: Option<SiteGrid>,
    post_inject_cycles: LatencyHistogram,
    wall_latency_us: LatencyHistogram,
}

impl Default for MetricsCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsCollector {
    /// A collector with no per-class tallies.
    pub fn new() -> Self {
        MetricsCollector {
            started: Instant::now(),
            planned: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            batching_disabled: AtomicU64::new(0),
            workers: AtomicU64::new(0),
            outcomes: std::array::from_fn(|_| AtomicU64::new(0)),
            structures: std::array::from_fn(|_| AtomicU64::new(0)),
            class_labels: Vec::new(),
            class_counts: Vec::new(),
            classifier: None,
            site_grid: None,
            post_inject_cycles: LatencyHistogram::new(),
            wall_latency_us: LatencyHistogram::new(),
        }
    }

    /// A collector that additionally tallies every result into a
    /// per-(bit-range × cycle-window) [`SiteGrid`] — the live posterior an
    /// adaptive campaign driver reads between batches (see
    /// [`grid_snapshot`](Self::grid_snapshot) and `crate::adaptive`).
    pub fn with_site_grid(bits: u64, cycles: u64, bit_bins: usize, cycle_bins: usize) -> Self {
        let mut c = Self::new();
        c.site_grid = Some(SiteGrid::new(bits, cycles, bit_bins, cycle_bins));
        c
    }

    /// A point-in-time copy of the posterior grid, if this collector has
    /// one. Taken at a batch boundary (no runs in flight) the snapshot is a
    /// deterministic function of the results recorded so far.
    pub fn grid_snapshot(&self) -> Option<GridSnapshot> {
        self.site_grid.as_ref().map(SiteGrid::snapshot)
    }

    /// A collector that additionally tallies a custom classification of
    /// every result (e.g. IMM classes — see `avgi_core::report`'s
    /// IMM-wired constructor). `classify` must return an index into
    /// `labels`; out-of-range results are ignored.
    pub fn with_classes(
        labels: Vec<&'static str>,
        classify: impl Fn(&InjectionResult) -> usize + Send + Sync + 'static,
    ) -> Self {
        let mut c = Self::new();
        c.class_counts = (0..labels.len()).map(|_| AtomicU64::new(0)).collect();
        c.class_labels = labels;
        c.classifier = Some(Box::new(classify));
        c
    }

    /// Host time since the collector was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    fn record(&self, structure: Structure, r: &InjectionResult) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.outcomes[outcome_index(r.outcome)].fetch_add(1, Ordering::Relaxed);
        self.structures[structure_index(structure)].fetch_add(1, Ordering::Relaxed);
        self.post_inject_cycles.record(r.post_inject_cycles);
        if let Some(classify) = &self.classifier {
            let idx = classify(r);
            if let Some(slot) = self.class_counts.get(idx) {
                slot.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(grid) = &self.site_grid {
            grid.record(r);
        }
    }

    /// A point-in-time copy of every counter plus derived rates.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            campaign: 0,
            planned: self.planned.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            resumed: self.resumed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            batching_disabled: self.batching_disabled.load(Ordering::Relaxed),
            workers: self.workers.load(Ordering::Relaxed),
            elapsed: self.elapsed(),
            outcomes: OUTCOME_LABELS
                .iter()
                .zip(&self.outcomes)
                .map(|(&l, n)| (l, n.load(Ordering::Relaxed)))
                .collect(),
            classes: self
                .class_labels
                .iter()
                .zip(&self.class_counts)
                .map(|(&l, n)| (l, n.load(Ordering::Relaxed)))
                .collect(),
            structures: Structure::all()
                .iter()
                .zip(&self.structures)
                .map(|(&s, n)| (s, n.load(Ordering::Relaxed)))
                .collect(),
            post_inject_cycles: self.post_inject_cycles.snapshot(),
            wall_latency_us: self.wall_latency_us.snapshot(),
        }
    }
}

impl CampaignObserver for MetricsCollector {
    fn on_campaign_start(&self, _structure: Structure, planned_runs: usize) {
        self.planned
            .fetch_add(planned_runs as u64, Ordering::Relaxed);
    }

    fn on_run(&self, structure: Structure, result: &InjectionResult, wall: Duration) {
        self.record(structure, result);
        self.wall_latency_us
            .record(u64::try_from(wall.as_micros()).unwrap_or(u64::MAX));
    }

    fn on_resumed(&self, structure: Structure, result: &InjectionResult) {
        self.record(structure, result);
        self.resumed.fetch_add(1, Ordering::Relaxed);
    }

    fn on_retry(&self, _structure: Structure) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    fn on_batching_disabled(&self, _reason: &str) {
        self.batching_disabled.fetch_add(1, Ordering::Relaxed);
    }

    fn on_worker_pool(&self, workers: usize) {
        // One collector may observe several consecutive campaigns; keep the
        // widest pool seen.
        self.workers.fetch_max(workers as u64, Ordering::Relaxed);
    }
}

/// A plain-data copy of a [`MetricsCollector`] at one point in time.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Which tenant campaign these counters belong to (`0` = untagged, the
    /// single-campaign default). A control plane scheduling many campaigns
    /// over one worker fleet tags each shard delta so merges can never mix
    /// tenants; see [`merge`](Self::merge) for the mixing rule. The tag is
    /// transport bookkeeping, not campaign content, so it is excluded from
    /// [`deterministic_counters_json`](Self::deterministic_counters_json) —
    /// a tagged merged snapshot stays byte-identical to its single-process
    /// (untagged) reference.
    pub campaign: u64,
    /// Runs the observed campaigns planned in total.
    pub planned: u64,
    /// Runs accounted for so far (freshly executed plus resumed).
    pub completed: u64,
    /// Of `completed`, how many were replayed from a journal.
    pub resumed: u64,
    /// Checkpoint-free retries of panicking runs.
    pub retries: u64,
    /// Engine invocations that requested shared-prefix batching but fell
    /// back to the classic per-run path (wall-clock budget set, or no
    /// checkpoint set). Depends on which engine path executed, not on the
    /// campaign identity, so — like `workers` — it is excluded from the
    /// deterministic subset and its wire format.
    pub batching_disabled: u64,
    /// Widest effective worker pool observed (0 until an engine reports
    /// one). Host-dependent, so excluded from the deterministic subset.
    pub workers: u64,
    /// Host time since the collector was created.
    pub elapsed: Duration,
    /// Per-outcome-family tallies, in [`OUTCOME_LABELS`] order.
    pub outcomes: Vec<(&'static str, u64)>,
    /// Per-class tallies (empty unless the collector has a classifier).
    pub classes: Vec<(&'static str, u64)>,
    /// Per-structure run counts, in [`Structure::all`] order.
    pub structures: Vec<(Structure, u64)>,
    /// Histogram of post-injection simulated cycles per run.
    pub post_inject_cycles: HistogramSnapshot,
    /// Histogram of wall-clock run latency, in microseconds.
    pub wall_latency_us: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Runs recorded as [`RunOutcome::SimAbort`].
    pub fn aborted(&self) -> u64 {
        self.outcomes[SIM_ABORT_INDEX].1
    }

    /// This snapshot re-tagged for a tenant campaign (see the
    /// [`campaign`](Self::campaign) field).
    pub fn with_campaign(mut self, campaign: u64) -> Self {
        self.campaign = campaign;
        self
    }

    /// Freshly executed runs per second of host time (resumed replays are
    /// excluded: they cost no simulation).
    pub fn runs_per_sec(&self) -> f64 {
        let fresh = self.completed.saturating_sub(self.resumed);
        fresh as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Estimated time to completion at the current rate; `None` when done
    /// or when no fresh run has finished yet.
    pub fn eta(&self) -> Option<Duration> {
        let remaining = self.planned.saturating_sub(self.completed);
        if remaining == 0 {
            return None;
        }
        let rate = self.runs_per_sec();
        if rate <= 0.0 {
            return None;
        }
        Some(Duration::from_secs_f64(remaining as f64 / rate))
    }

    /// One human-readable progress line: completion, runs/sec, ETA, and
    /// the non-zero per-outcome counts plus abort/retry counters.
    pub fn progress_line(&self) -> String {
        use core::fmt::Write as _;
        let pct = if self.planned > 0 {
            100.0 * self.completed as f64 / self.planned as f64
        } else {
            100.0
        };
        let eta = self
            .eta()
            .map_or_else(|| "-".to_string(), |d| format!("{:.1}s", d.as_secs_f64()));
        let mut line = format!(
            "{}/{} runs ({pct:.1}%) | {:.1} runs/s | ETA {eta}",
            self.completed,
            self.planned,
            self.runs_per_sec(),
        );
        for (label, n) in &self.outcomes {
            if *n > 0 {
                let _ = write!(line, " | {label} {n}");
            }
        }
        let _ = write!(
            line,
            " | aborts {} retries {}",
            self.aborted(),
            self.retries
        );
        line
    }

    fn labelled_counts_json(pairs: impl Iterator<Item = (String, u64)>) -> String {
        let mut out = String::from("{");
        for (i, (label, n)) in pairs.enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{n}", crate::json::escape(&label)));
        }
        out.push('}');
        out
    }

    /// The full snapshot as one JSON object (floats included — this is the
    /// `metrics.json` dump format for external consumers).
    pub fn to_json(&self) -> String {
        let eta_us = self
            .eta()
            .map_or_else(|| "null".to_string(), |d| d.as_micros().to_string());
        format!(
            "{{\"kind\":\"avgi-campaign-metrics\",\"version\":1,\
             \"campaign\":{},\
             \"planned\":{},\"completed\":{},\"resumed\":{},\"retries\":{},\"aborted\":{},\
             \"batching_disabled\":{},\
             \"workers\":{},\"elapsed_us\":{},\"runs_per_sec\":{:.1},\"eta_us\":{eta_us},\
             \"outcomes\":{},\"classes\":{},\"structures\":{},\
             \"post_inject_cycles_hist\":{},\"wall_latency_us_hist\":{}}}",
            self.campaign,
            self.planned,
            self.completed,
            self.resumed,
            self.retries,
            self.aborted(),
            self.batching_disabled,
            self.workers,
            self.elapsed.as_micros(),
            self.runs_per_sec(),
            Self::labelled_counts_json(self.outcomes.iter().map(|(l, n)| ((*l).to_string(), *n))),
            Self::labelled_counts_json(self.classes.iter().map(|(l, n)| ((*l).to_string(), *n))),
            Self::labelled_counts_json(
                self.structures
                    .iter()
                    .filter(|(_, n)| *n > 0)
                    .map(|(s, n)| (s.ident().to_string(), *n))
            ),
            self.post_inject_cycles.to_json(),
            self.wall_latency_us.to_json(),
        )
    }

    /// The deterministic subset of [`to_json`](Self::to_json): everything
    /// that is a pure function of the campaign definition. Excludes wall
    /// time, rates, the wall-latency histogram, and the `resumed`
    /// bookkeeping count (which reflects interruption history, not campaign
    /// content). Two campaigns with the same seed and fault list produce
    /// byte-identical strings here, regardless of thread count or resume
    /// pattern.
    pub fn deterministic_counters_json(&self) -> String {
        format!(
            "{{\"planned\":{},\"completed\":{},\"retries\":{},\"aborted\":{},\
             \"outcomes\":{},\"classes\":{},\"structures\":{},\
             \"post_inject_cycles_hist\":{}}}",
            self.planned,
            self.completed,
            self.retries,
            self.aborted(),
            Self::labelled_counts_json(self.outcomes.iter().map(|(l, n)| ((*l).to_string(), *n))),
            Self::labelled_counts_json(self.classes.iter().map(|(l, n)| ((*l).to_string(), *n))),
            Self::labelled_counts_json(
                self.structures
                    .iter()
                    .filter(|(_, n)| *n > 0)
                    .map(|(s, n)| (s.ident().to_string(), *n))
            ),
            self.post_inject_cycles.to_json(),
        )
    }

    /// An all-zero snapshot: the identity of [`merge`](Self::merge), used
    /// as the accumulator when folding shard deltas together.
    pub fn empty() -> Self {
        MetricsSnapshot {
            campaign: 0,
            planned: 0,
            completed: 0,
            resumed: 0,
            retries: 0,
            batching_disabled: 0,
            workers: 0,
            elapsed: Duration::ZERO,
            outcomes: OUTCOME_LABELS.iter().map(|&l| (l, 0)).collect(),
            classes: Vec::new(),
            structures: Structure::all().iter().map(|&s| (s, 0)).collect(),
            post_inject_cycles: HistogramSnapshot::empty(),
            wall_latency_us: HistogramSnapshot::empty(),
        }
    }

    /// Adds another snapshot's counters into this one.
    ///
    /// This is the aggregation a distributed campaign relies on: if the
    /// shards of a partition each record their runs into separate
    /// collectors, merging the shard snapshots yields exactly the counters
    /// a single-process campaign over the whole fault list produces — its
    /// [`deterministic_counters_json`](Self::deterministic_counters_json)
    /// is byte-identical. Additive counters and histograms sum; labelled
    /// tallies align by label (labels unknown to `self` are appended);
    /// `workers` takes the maximum and `elapsed` the longest shard (shards
    /// overlap in wall time, so summing would overstate it).
    /// `merge` refuses to mix tenants: folding a delta tagged for campaign
    /// A into an accumulator tagged for campaign B is always a control-plane
    /// bug, so it panics rather than silently corrupting both tenants'
    /// counters. An untagged side (campaign `0`) adopts the other side's
    /// tag, which keeps every pre-existing single-campaign call site
    /// working unchanged.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        fn merge_labelled(mine: &mut Vec<(&'static str, u64)>, theirs: &[(&'static str, u64)]) {
            for &(label, n) in theirs {
                match mine.iter_mut().find(|(l, _)| *l == label) {
                    Some((_, m)) => *m += n,
                    None => mine.push((label, n)),
                }
            }
        }
        assert!(
            self.campaign == 0 || other.campaign == 0 || self.campaign == other.campaign,
            "refusing to merge telemetry across campaigns {} and {}",
            self.campaign,
            other.campaign
        );
        if self.campaign == 0 {
            self.campaign = other.campaign;
        }
        self.planned += other.planned;
        self.completed += other.completed;
        self.resumed += other.resumed;
        self.retries += other.retries;
        self.batching_disabled += other.batching_disabled;
        self.workers = self.workers.max(other.workers);
        self.elapsed = self.elapsed.max(other.elapsed);
        merge_labelled(&mut self.outcomes, &other.outcomes);
        merge_labelled(&mut self.classes, &other.classes);
        for &(structure, n) in &other.structures {
            match self.structures.iter_mut().find(|(s, _)| *s == structure) {
                Some((_, m)) => *m += n,
                None => self.structures.push((structure, n)),
            }
        }
        self.post_inject_cycles.merge(&other.post_inject_cycles);
        self.wall_latency_us.merge(&other.wall_latency_us);
    }

    /// Rebuilds the deterministic counters from a
    /// [`deterministic_counters_json`](Self::deterministic_counters_json)
    /// document — the wire format of a shard's telemetry delta.
    ///
    /// Wall-clock fields are not on the wire and come back zeroed. Class
    /// labels are resolved against `class_labels` (the label set the
    /// sending collector was built with); an unknown outcome, structure, or
    /// class label is an error rather than a silently dropped count.
    pub fn from_deterministic_json(
        json: &str,
        class_labels: &[&'static str],
    ) -> Result<MetricsSnapshot, String> {
        Self::from_deterministic_value(&crate::json::parse(json)?, class_labels)
    }

    /// [`from_deterministic_json`](Self::from_deterministic_json) over an
    /// already-parsed value (e.g. a delta embedded in a larger message).
    pub fn from_deterministic_value(
        v: &crate::json::Json,
        class_labels: &[&'static str],
    ) -> Result<MetricsSnapshot, String> {
        use crate::json::Json;
        let int = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing counter `{key}`"))
        };
        let pairs = |key: &str| -> Result<Vec<(String, u64)>, String> {
            match v.get(key) {
                Some(Json::Object(fields)) => fields
                    .iter()
                    .map(|(label, n)| {
                        n.as_u64()
                            .map(|n| (label.clone(), n))
                            .ok_or_else(|| format!("bad count for `{label}` in `{key}`"))
                    })
                    .collect(),
                _ => Err(format!("missing object `{key}`")),
            }
        };
        let mut snap = MetricsSnapshot::empty();
        snap.planned = int("planned")?;
        snap.completed = int("completed")?;
        snap.retries = int("retries")?;
        for (label, n) in pairs("outcomes")? {
            let slot = snap
                .outcomes
                .iter_mut()
                .find(|(l, _)| *l == label)
                .ok_or_else(|| format!("unknown outcome label `{label}`"))?;
            slot.1 = n;
        }
        for (label, n) in pairs("classes")? {
            let resolved = class_labels
                .iter()
                .find(|l| **l == label)
                .ok_or_else(|| format!("unknown class label `{label}`"))?;
            snap.classes.push((resolved, n));
        }
        for (label, n) in pairs("structures")? {
            let structure = Structure::from_ident(&label)
                .ok_or_else(|| format!("unknown structure `{label}`"))?;
            snap.structures
                .iter_mut()
                .find(|(s, _)| *s == structure)
                .expect("Structure::all() covers every structure")
                .1 = n;
        }
        let hist = v
            .get("post_inject_cycles_hist")
            .and_then(Json::as_array)
            .ok_or("missing `post_inject_cycles_hist`")?;
        if hist.len() > HIST_BUCKETS {
            return Err(format!("histogram has {} buckets", hist.len()));
        }
        for (i, n) in hist.iter().enumerate() {
            snap.post_inject_cycles.counts[i] = n.as_u64().ok_or("bad histogram bucket count")?;
        }
        let aborted = int("aborted")?;
        if aborted != snap.aborted() {
            return Err(format!(
                "aborted counter {} disagrees with SimAbort tally {}",
                aborted,
                snap.aborted()
            ));
        }
        Ok(snap)
    }
}

type SnapshotSink = dyn Fn(&MetricsSnapshot) + Send + Sync;

/// Wraps a [`MetricsCollector`] and emits periodic snapshots to a sink.
///
/// Snapshots are emitted at most once per `interval` (checked on each
/// finished run; no timer thread), plus one guaranteed final snapshot at
/// campaign end — so even a campaign shorter than the interval produces at
/// least one progress line.
pub struct ProgressObserver {
    collector: std::sync::Arc<MetricsCollector>,
    interval_us: u64,
    last_emit_us: AtomicU64,
    sink: Box<SnapshotSink>,
}

impl ProgressObserver {
    /// A progress observer with a custom sink.
    pub fn with_sink(
        collector: std::sync::Arc<MetricsCollector>,
        interval: Duration,
        sink: impl Fn(&MetricsSnapshot) + Send + Sync + 'static,
    ) -> Self {
        ProgressObserver {
            collector,
            interval_us: u64::try_from(interval.as_micros()).unwrap_or(u64::MAX),
            last_emit_us: AtomicU64::new(0),
            sink: Box::new(sink),
        }
    }

    /// A progress observer printing `[progress] <line>` to stderr.
    pub fn stderr(collector: std::sync::Arc<MetricsCollector>, interval: Duration) -> Self {
        Self::with_sink(collector, interval, |snap| {
            eprintln!("[progress] {}", snap.progress_line());
        })
    }

    /// The wrapped collector.
    pub fn collector(&self) -> &std::sync::Arc<MetricsCollector> {
        &self.collector
    }

    fn maybe_emit(&self, force: bool) {
        let now = u64::try_from(self.collector.elapsed().as_micros()).unwrap_or(u64::MAX);
        let last = self.last_emit_us.load(Ordering::Relaxed);
        let due = force || now.saturating_sub(last) >= self.interval_us;
        if due
            && self
                .last_emit_us
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            (self.sink)(&self.collector.snapshot());
        }
    }
}

impl CampaignObserver for ProgressObserver {
    fn on_campaign_start(&self, structure: Structure, planned_runs: usize) {
        self.collector.on_campaign_start(structure, planned_runs);
    }

    fn on_run(&self, structure: Structure, result: &InjectionResult, wall: Duration) {
        self.collector.on_run(structure, result, wall);
        self.maybe_emit(false);
    }

    fn on_resumed(&self, structure: Structure, result: &InjectionResult) {
        self.collector.on_resumed(structure, result);
    }

    fn on_retry(&self, structure: Structure) {
        self.collector.on_retry(structure);
    }

    fn on_batching_disabled(&self, reason: &str) {
        self.collector.on_batching_disabled(reason);
    }

    fn on_worker_pool(&self, workers: usize) {
        self.collector.on_worker_pool(workers);
    }

    fn on_campaign_end(&self, _structure: Structure) {
        self.maybe_emit(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avgi_muarch::fault::{Fault, FaultSite};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn result(outcome: RunOutcome, post: u64) -> InjectionResult {
        InjectionResult {
            fault: Fault {
                site: FaultSite {
                    structure: Structure::RegFile,
                    bit: 1,
                },
                cycle: 10,
            },
            outcome,
            deviation: None,
            output_matches: Some(true),
            cycles: post + 10,
            post_inject_cycles: post,
            abort_message: None,
        }
    }

    #[test]
    fn log2_buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo < hi, "bucket {i} is empty");
            assert_eq!(bucket_of(lo), i, "lower bound of bucket {i}");
            if i < 64 {
                assert_eq!(bucket_of(hi - 1), i, "upper bound of bucket {i}");
                assert_eq!(bucket_of(hi), i + 1, "buckets must abut");
            }
        }
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let h = LatencyHistogram::new();
        for v in [0, 1, 5, 5, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.total(), 5);
        assert_eq!(s.counts[bucket_of(0)], 1);
        assert_eq!(s.counts[bucket_of(5)], 2);
        // Median falls in the [4, 8) bucket; its upper edge bounds it.
        assert_eq!(s.approx_quantile(0.5), Some(8));
        assert_eq!(s.approx_quantile(1.0), Some(1024));
        assert!(LatencyHistogram::new()
            .snapshot()
            .approx_quantile(0.5)
            .is_none());
        assert_eq!(LatencyHistogram::new().snapshot().to_json(), "[]");
        assert_eq!(s.to_json().matches(',').count() + 1, bucket_of(1000) + 1);
    }

    #[test]
    fn collector_counts_runs_outcomes_and_structures() {
        let c = MetricsCollector::new();
        c.on_campaign_start(Structure::RegFile, 3);
        c.on_run(
            Structure::RegFile,
            &result(RunOutcome::Completed, 100),
            Duration::from_micros(50),
        );
        c.on_run(
            Structure::RegFile,
            &result(RunOutcome::SimAbort, 0),
            Duration::from_micros(70),
        );
        c.on_retry(Structure::RegFile);
        c.on_resumed(Structure::Rob, &result(RunOutcome::Watchdog, 9));
        let s = c.snapshot();
        assert_eq!(s.planned, 3);
        assert_eq!(s.completed, 3);
        assert_eq!(s.resumed, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.aborted(), 1);
        let get = |label: &str| {
            s.outcomes
                .iter()
                .find(|(l, _)| *l == label)
                .map(|(_, n)| *n)
                .unwrap()
        };
        assert_eq!(get("Completed"), 1);
        assert_eq!(get("SimAbort"), 1);
        assert_eq!(get("Watchdog"), 1);
        let rf = s
            .structures
            .iter()
            .find(|(st, _)| *st == Structure::RegFile)
            .unwrap()
            .1;
        assert_eq!(rf, 2);
        assert_eq!(s.post_inject_cycles.total(), 3);
        // Resumed replays have no wall-latency sample.
        assert_eq!(s.wall_latency_us.total(), 2);
        assert!(s.eta().is_none(), "campaign complete");
        assert!(s.progress_line().contains("3/3 runs"));
        assert!(s.progress_line().contains("aborts 1 retries 1"));
    }

    #[test]
    fn classifier_tallies_are_counted() {
        let c = MetricsCollector::with_classes(vec!["short", "long"], |r| {
            usize::from(r.post_inject_cycles >= 100)
        });
        c.on_run(
            Structure::RegFile,
            &result(RunOutcome::Completed, 5),
            Duration::ZERO,
        );
        c.on_run(
            Structure::RegFile,
            &result(RunOutcome::Completed, 500),
            Duration::ZERO,
        );
        c.on_run(
            Structure::RegFile,
            &result(RunOutcome::Completed, 501),
            Duration::ZERO,
        );
        let s = c.snapshot();
        assert_eq!(s.classes, vec![("short", 1), ("long", 2)]);
    }

    #[test]
    fn snapshot_json_shapes_parse() {
        let c = MetricsCollector::with_classes(vec!["a"], |_| 0);
        c.on_campaign_start(Structure::Lq, 1);
        c.on_run(
            Structure::Lq,
            &result(RunOutcome::Completed, 1 << 20),
            Duration::from_millis(3),
        );
        let s = c.snapshot();
        // Both dumps are valid JSON for our own parser (the deterministic
        // one is float-free by construction; the full one keeps floats out
        // of everything the parser needs to see in tests).
        let det = crate::json::parse(&s.deterministic_counters_json()).unwrap();
        assert_eq!(det.get("completed").unwrap().as_u64(), Some(1));
        assert_eq!(det.get("aborted").unwrap().as_u64(), Some(0));
        assert_eq!(
            det.get("structures").unwrap().get("Lq").unwrap().as_u64(),
            Some(1)
        );
        let hist = det
            .get("post_inject_cycles_hist")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(hist.len(), bucket_of(1 << 20) + 1);
        assert!(s.to_json().contains("\"kind\":\"avgi-campaign-metrics\""));
        assert!(s.to_json().contains("\"runs_per_sec\":"));
    }

    #[test]
    fn campaign_tag_spreads_on_merge_but_stays_off_the_deterministic_wire() {
        let tagged = MetricsSnapshot::empty().with_campaign(7);
        let mut acc = MetricsSnapshot::empty();
        acc.merge(&tagged);
        assert_eq!(acc.campaign, 7, "untagged accumulator adopts the tag");
        acc.merge(&MetricsSnapshot::empty());
        assert_eq!(acc.campaign, 7, "untagged delta leaves the tag alone");
        assert_eq!(
            acc.deterministic_counters_json(),
            MetricsSnapshot::empty().deterministic_counters_json(),
            "the tag is bookkeeping, not campaign content"
        );
        assert!(acc.to_json().contains("\"campaign\":7"));
    }

    #[test]
    #[should_panic(expected = "refusing to merge telemetry across campaigns")]
    fn merging_two_tenants_panics() {
        let mut a = MetricsSnapshot::empty().with_campaign(1);
        a.merge(&MetricsSnapshot::empty().with_campaign(2));
    }

    #[test]
    fn outcome_class_is_total_and_matches_the_effect_taxonomy() {
        let mut r = result(RunOutcome::Completed, 5);
        assert_eq!(outcome_class(&r), OutcomeClass::Masked);
        r.output_matches = Some(false);
        assert_eq!(outcome_class(&r), OutcomeClass::Sdc);
        r.output_matches = None;
        assert_eq!(outcome_class(&r), OutcomeClass::Masked);
        for crash in [
            RunOutcome::Trap(avgi_muarch::run::TrapKind::UndefinedInstruction),
            RunOutcome::Watchdog,
            RunOutcome::WallClockExpired,
            RunOutcome::SimAbort,
        ] {
            let mut r = result(crash, 5);
            r.output_matches = None;
            assert_eq!(outcome_class(&r), OutcomeClass::Crash, "{crash:?}");
        }
        // Early stops classify by whether a deviation was observed.
        let mut r = result(RunOutcome::ErtExpired, 5);
        r.output_matches = None;
        assert_eq!(outcome_class(&r), OutcomeClass::Masked);
    }

    #[test]
    fn site_grid_cells_partition_the_population() {
        let g = SiteGrid::new(1000, 400, 4, 5);
        let snap = g.snapshot();
        assert_eq!(snap.cells(), 20);
        // Population masses over all cells sum to 1.
        let total: f64 = (0..snap.cells()).map(|c| snap.population_mass(c)).sum();
        assert!((total - 1.0).abs() < 1e-12, "got {total}");
        // Every site maps into the cell whose ranges contain it.
        for &(bit, cycle) in &[(0, 0), (999, 399), (250, 80), (749, 320)] {
            let cell = g.cell_of(bit, cycle);
            let s = g.snapshot();
            let (b_lo, b_hi) = s.bit_range(cell);
            let (c_lo, c_hi) = s.cycle_range(cell);
            assert!((b_lo..b_hi).contains(&bit), "bit {bit} cell {cell}");
            assert!((c_lo..c_hi).contains(&cycle), "cycle {cycle} cell {cell}");
        }
    }

    #[test]
    fn site_grid_clamps_bins_to_tiny_axes() {
        // A 3-bit structure cannot host 8 bit ranges; bins clamp, cells
        // stay non-empty, and nothing panics.
        let g = SiteGrid::new(3, 2, 8, 8);
        let snap = g.snapshot();
        assert_eq!(snap.bit_bins, 3);
        assert_eq!(snap.cycle_bins, 2);
        for cell in 0..snap.cells() {
            let (b_lo, b_hi) = snap.bit_range(cell);
            let (c_lo, c_hi) = snap.cycle_range(cell);
            assert!(b_hi > b_lo && c_hi > c_lo, "empty cell {cell}");
        }
    }

    #[test]
    fn collector_grid_tallies_runs_and_affected() {
        let c = MetricsCollector::with_site_grid(1 << 12, 1 << 10, 8, 8);
        let mut masked = result(RunOutcome::Completed, 5);
        masked.fault.site.bit = 100;
        masked.fault.cycle = 10;
        c.on_run(Structure::RegFile, &masked, Duration::ZERO);
        let mut sdc = result(RunOutcome::Completed, 5);
        sdc.fault.site.bit = 100;
        sdc.fault.cycle = 10;
        sdc.output_matches = Some(false);
        // Resumed replays land in the grid exactly like fresh runs.
        c.on_resumed(Structure::RegFile, &sdc);
        let snap = c.grid_snapshot().expect("grid attached");
        assert_eq!(snap.total_runs(), 2);
        assert_eq!(snap.total_affected(), 1);
        let cell = SiteGrid::new(1 << 12, 1 << 10, 8, 8).cell_of(100, 10);
        assert_eq!(snap.runs[cell], 2);
        assert_eq!(snap.affected[cell], 1);
        // The JSON round-trips deterministic content.
        let j = snap.to_json();
        assert!(j.contains("\"bit_bins\":8"));
        assert_eq!(snap, c.grid_snapshot().unwrap());
        // A plain collector has no grid.
        assert!(MetricsCollector::new().grid_snapshot().is_none());
    }

    #[test]
    fn progress_observer_emits_final_snapshot() {
        let collector = Arc::new(MetricsCollector::new());
        let emitted = Arc::new(AtomicUsize::new(0));
        let seen = emitted.clone();
        let p =
            ProgressObserver::with_sink(collector.clone(), Duration::from_secs(3600), move |_| {
                seen.fetch_add(1, Ordering::Relaxed);
            });
        p.on_campaign_start(Structure::RegFile, 2);
        p.on_run(
            Structure::RegFile,
            &result(RunOutcome::Completed, 1),
            Duration::ZERO,
        );
        p.on_run(
            Structure::RegFile,
            &result(RunOutcome::Completed, 2),
            Duration::ZERO,
        );
        assert_eq!(emitted.load(Ordering::Relaxed), 0, "interval not reached");
        p.on_campaign_end(Structure::RegFile);
        assert_eq!(
            emitted.load(Ordering::Relaxed),
            1,
            "final snapshot is forced"
        );
        assert_eq!(p.collector().snapshot().completed, 2);
    }

    #[test]
    fn zero_interval_emits_on_every_run() {
        let collector = Arc::new(MetricsCollector::new());
        let emitted = Arc::new(AtomicUsize::new(0));
        let seen = emitted.clone();
        let p = ProgressObserver::with_sink(collector, Duration::ZERO, move |_| {
            seen.fetch_add(1, Ordering::Relaxed);
        });
        p.on_campaign_start(Structure::RegFile, 3);
        for i in 0..3 {
            p.on_run(
                Structure::RegFile,
                &result(RunOutcome::Completed, i),
                Duration::ZERO,
            );
        }
        assert_eq!(emitted.load(Ordering::Relaxed), 3);
    }
}
