//! # avgi-faultsim — the statistical fault injection framework
//!
//! The GeFIN analogue of the reproduction: deterministic uniform fault
//! sampling (Leveugle et al. \[1\]), golden-run capture, and parallel
//! injection campaigns over the twelve hardware structures of the
//! microarchitecture simulator.
//!
//! Three [`RunMode`]s map to the paper's flows:
//!
//! * [`RunMode::EndToEnd`] — the traditional accelerated SFI baseline,
//! * [`RunMode::Instrumented`] — end-to-end *plus* first-deviation capture
//!   (the §III joint HVF/AVF analysis used to learn IMM weights),
//! * [`RunMode::FirstDeviation`] — the AVGI production mode (stop at first
//!   corruption; optional effective-residency-time window).
//!
//! The campaign engine is fault-tolerant: a panicking simulator run is
//! isolated and recorded as [`avgi_muarch::run::RunOutcome::SimAbort`] (crash
//! family) instead of taking the campaign down, runaway runs can be bounded
//! by a wall-clock budget ([`CampaignConfig::with_wall_budget`]), and long
//! campaigns can be journaled to disk and resumed bit-identically
//! ([`run_campaign_journaled`]). See `DESIGN.md` §6 for the failure model.
//!
//! ```no_run
//! use avgi_faultsim::{golden_for, run_campaign, CampaignConfig, RunMode};
//! use avgi_muarch::{MuarchConfig, Structure};
//!
//! let w = avgi_workloads::by_name("sha").unwrap();
//! let cfg = MuarchConfig::big();
//! let golden = golden_for(&w, &cfg);
//! let campaign = CampaignConfig::new(Structure::RegFile, 200, RunMode::EndToEnd);
//! let result = run_campaign(&w, &cfg, &golden, &campaign);
//! assert_eq!(result.len(), 200);
//! ```

pub mod adaptive;
pub mod campaign;
pub mod error;
pub mod journal;
pub mod json;
pub mod sampling;
pub mod telemetry;
pub mod xcheck;

pub use adaptive::{
    build_proposal, run_adaptive, run_adaptive_journaled, weighted_estimate, AdaptiveConfig,
    AdaptiveReport, Proposal, WeightedEstimate,
};
pub use campaign::{
    golden_for, run_campaign, run_campaign_journaled, run_campaign_with_faults, run_one,
    run_one_from, watchdog_budget, CampaignConfig, CampaignResult, CheckpointSet, InjectionResult,
    RunMode, ShardRunner,
};
pub use error::CampaignError;
pub use journal::{config_hash, crc32, CampaignKey, DurabilityPolicy, Journal};
pub use sampling::{
    error_margin, error_margin_at, multi_bit_burst, sample_faults, sample_size, sample_size_at,
    wilson_interval, z_value, Confidence, SamplingError,
};
pub use xcheck::{
    run_xcheck, run_xcheck_fresh, run_xtier, run_xtier_fresh, XcheckReport, XtierReport,
};

pub use telemetry::{
    outcome_class, CampaignObserver, GridSnapshot, HistogramSnapshot, LatencyHistogram,
    MetricsCollector, MetricsSnapshot, NullObserver, OutcomeClass, ProgressObserver, SiteGrid,
};
