//! Determinism contract of the telemetry layer: every counter outside the
//! wall-clock family is a pure function of (seed, fault list, mode) — the
//! thread count and any journal interruption/resume pattern must not show
//! up in `deterministic_counters_json()`.

use avgi_faultsim::{
    golden_for, run_campaign, run_campaign_journaled, CampaignConfig, MetricsCollector,
    MetricsSnapshot, RunMode,
};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::Structure;
use std::sync::Arc;

/// Runs a fresh campaign with `threads` workers and an attached collector,
/// returning the final snapshot.
fn observed_run(threads: usize, seed: u64) -> MetricsSnapshot {
    let w = avgi_workloads::by_name("crc32").unwrap();
    let cfg = MuarchConfig::big();
    let golden = golden_for(&w, &cfg);
    let collector = Arc::new(MetricsCollector::new());
    let ccfg = CampaignConfig {
        threads,
        ..CampaignConfig::new(Structure::RegFile, 24, RunMode::Instrumented)
    }
    .with_seed(seed)
    .with_observer(collector.clone());
    run_campaign(&w, &cfg, &golden, &ccfg);
    collector.snapshot()
}

#[test]
fn metrics_are_thread_count_independent() {
    let a = observed_run(1, 11);
    let b = observed_run(4, 11);
    assert_eq!(
        a.deterministic_counters_json(),
        b.deterministic_counters_json(),
        "1-thread and 4-thread campaigns must produce identical counters"
    );
    // The histogram equality is part of the JSON above, but assert it
    // directly too so a serialization bug cannot mask a counting bug.
    assert_eq!(a.post_inject_cycles, b.post_inject_cycles);
    assert_eq!(a.completed, 24);
    // A different seed must be *visible* in the counters' input (planned
    // count aside) — guard against the JSON being constant by construction.
    let c = observed_run(4, 12);
    assert_eq!(c.completed, 24);
}

#[test]
fn resumed_campaign_metrics_match_uninterrupted_run() {
    let w = avgi_workloads::by_name("crc32").unwrap();
    let cfg = MuarchConfig::big();
    let golden = golden_for(&w, &cfg);

    let path = std::env::temp_dir().join(format!(
        "avgi-telemetry-resume-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    let base = CampaignConfig::new(Structure::L1DData, 16, RunMode::Instrumented).with_seed(7);

    // Reference: one uninterrupted journaled run, fully observed.
    let full = Arc::new(MetricsCollector::new());
    run_campaign_journaled(
        &w,
        &cfg,
        &golden,
        &base.clone().with_observer(full.clone()),
        &path,
    )
    .unwrap();

    // Interrupt: keep the header plus half the records, plus a torn line.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.split_inclusive('\n').collect();
    assert_eq!(lines.len(), 1 + 16, "header plus one record per injection");
    let mut truncated: String = lines[..1 + 8].concat();
    truncated.push_str("{\"i\":15,\"fault\":{\"structure\":\"L1D");
    std::fs::write(&path, &truncated).unwrap();

    // Resume: 8 results replay through `on_resumed`, 8 run fresh.
    let resumed = Arc::new(MetricsCollector::new());
    run_campaign_journaled(
        &w,
        &cfg,
        &golden,
        &base.with_observer(resumed.clone()),
        &path,
    )
    .unwrap();

    let full = full.snapshot();
    let resumed = resumed.snapshot();
    assert_eq!(
        full.deterministic_counters_json(),
        resumed.deterministic_counters_json(),
        "resume must not change any deterministic counter"
    );
    // Only the resume-bookkeeping counter may differ.
    assert_eq!(full.resumed, 0);
    assert_eq!(resumed.resumed, 8);
    assert_eq!(resumed.completed, 16);

    let _ = std::fs::remove_file(&path);
}
