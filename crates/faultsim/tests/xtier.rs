//! Execution-tier identity across the whole workload suite.
//!
//! The fast pre-decoded interpreter is only usable for golden verification,
//! masked re-runs, and reference sides if it is *bit-identical* to both the
//! reference interpreter and the cycle-accurate pipeline — on every
//! workload, not just the friendly ones. This test walks all fourteen:
//!
//! * `avgi_refmodel::verify_fast_tier` steps the reference and fast models
//!   side by side (and re-runs the block-threaded batch path),
//! * `avgi_muarch::compare_backends` replays the fast tier against the
//!   pipeline's recorded commit stream, record for record, outputs included.
//!
//! A second test runs the full four-leg [`avgi_faultsim::run_xtier`] prover
//! (substrate, interpreter, pipeline, campaign-across-tiers) on two
//! workloads — the same pair the CI smoke step checks.

use avgi_faultsim::{run_xtier, watchdog_budget, CampaignConfig, RunMode};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::{compare_backends, Structure, TraceBackend};
use avgi_refmodel::{verify_fast_tier, FastModel};

#[test]
fn fast_tier_matches_the_pipeline_on_every_workload() {
    let cfg = MuarchConfig::big();
    for w in avgi_workloads::all() {
        let steps = verify_fast_tier(&w.program, 0)
            .unwrap_or_else(|e| panic!("`{}`: fast tier diverges from reference: {e}", w.name));
        assert!(steps > 0, "`{}` retired no instructions", w.name);

        let golden = avgi_faultsim::golden_for(&w, &cfg);
        let mut pipeline = TraceBackend::new(&golden);
        let mut fast = FastModel::new(&w.program);
        let commits = compare_backends(&mut pipeline, &mut fast, watchdog_budget(golden.cycles))
            .unwrap_or_else(|e| panic!("`{}`: fast tier diverges from pipeline: {e}", w.name));
        assert_eq!(
            commits,
            golden.trace.len() as u64,
            "`{}`: fast tier must cover the whole golden stream",
            w.name
        );
    }
}

#[test]
fn full_xtier_prover_passes_on_smoke_workloads() {
    let cfg = MuarchConfig::big();
    for name in ["bitcount", "crc32"] {
        let w = avgi_workloads::by_name(name).unwrap();
        let golden = avgi_faultsim::golden_for(&w, &cfg);
        let ccfg = CampaignConfig::new(
            Structure::RegFile,
            16,
            RunMode::FirstDeviation {
                ert_window: Some(2_000),
            },
        );
        let report =
            run_xtier(&w, &cfg, &golden, &ccfg).unwrap_or_else(|e| panic!("`{name}`: {e}"));
        assert_eq!(report.workload, name);
        assert_eq!(report.runs_compared, 16);
        assert!(report.interp_steps > 0);
        assert!(report.commits_compared > 0);
    }
}
