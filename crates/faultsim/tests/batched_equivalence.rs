//! Property test: the shared-prefix batched engine is *observationally
//! invisible*. Over random fault sets, every combination of worker threads
//! ∈ {1, 4} and batch size ∈ {1, 8, 64} must produce:
//!
//! * the same [`CampaignResult`] records, in fault order,
//! * the same deterministic telemetry counters, and
//! * the same journal records (compared as a sorted-line CRC — worker
//!   threads race for units, so on-disk record *order* is scheduling-
//!   dependent, but the record *set* is pinned; the header line is skipped
//!   because the campaign key legitimately includes the thread count).
//!
//! `batch = 1` disables batching entirely, so the batched engine is held to
//! the classic engine across both axes at once.

use avgi_faultsim::journal::crc32;
use avgi_faultsim::telemetry::MetricsCollector;
use avgi_faultsim::{run_campaign_journaled, CampaignConfig, CampaignResult, RunMode};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::Structure;
use std::path::PathBuf;
use std::sync::Arc;

const FAULTS: usize = 24;
const THREADS: [usize; 2] = [1, 4];
const BATCHES: [usize; 3] = [1, 8, 64];

struct Fixture {
    w: avgi_workloads::Workload,
    cfg: MuarchConfig,
    golden: Arc<avgi_muarch::trace::GoldenRun>,
}

fn fixture() -> Fixture {
    let w = avgi_workloads::by_name("bitcount").unwrap();
    let cfg = MuarchConfig::big();
    let golden = avgi_faultsim::golden_for(&w, &cfg);
    Fixture { w, cfg, golden }
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("avgi-batcheq-{tag}-{}.jsonl", std::process::id()))
}

/// Everything a campaign exposes to the outside world.
struct Observables {
    result: CampaignResult,
    counters: String,
    journal_hash: u32,
}

fn observe(f: &Fixture, base: &CampaignConfig, threads: usize, batch: usize) -> Observables {
    let metrics = Arc::new(MetricsCollector::new());
    let ccfg = CampaignConfig {
        threads,
        ..base.clone()
    }
    .with_batch(batch)
    .with_observer(metrics.clone());
    let path = tmp_path(&format!(
        "{:?}-{}-t{threads}-b{batch}",
        base.structure, base.seed
    ));
    let _ = std::fs::remove_file(&path);
    let result = run_campaign_journaled(&f.w, &f.cfg, &f.golden, &ccfg, &path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let mut records: Vec<&str> = text.lines().skip(1).collect();
    assert_eq!(records.len(), FAULTS, "one journal record per fault");
    records.sort_unstable();
    Observables {
        result,
        counters: metrics.snapshot().deterministic_counters_json(),
        journal_hash: crc32(records.join("\n").as_bytes()),
    }
}

fn assert_grid_identical(f: &Fixture, base: &CampaignConfig) {
    let reference = observe(f, base, 1, 1);
    assert_eq!(reference.result.len(), FAULTS);
    for threads in THREADS {
        for batch in BATCHES {
            if (threads, batch) == (1, 1) {
                continue;
            }
            let v = observe(f, base, threads, batch);
            assert_eq!(
                v.result.results, reference.result.results,
                "results differ at threads={threads} batch={batch} (seed {:#x}, {:?})",
                base.seed, base.structure
            );
            assert_eq!(
                v.counters, reference.counters,
                "telemetry counters differ at threads={threads} batch={batch}"
            );
            assert_eq!(
                v.journal_hash, reference.journal_hash,
                "journal records differ at threads={threads} batch={batch}"
            );
        }
    }
}

#[test]
fn batched_engine_is_observationally_identical_in_production_mode() {
    let f = fixture();
    for seed in [0xA1u64, 0x5EED_0002] {
        let base = CampaignConfig::new(
            Structure::RegFile,
            FAULTS,
            RunMode::FirstDeviation {
                ert_window: Some(2_000),
            },
        )
        .with_seed(seed);
        assert_grid_identical(&f, &base);
    }
}

#[test]
fn batched_engine_is_observationally_identical_end_to_end_on_the_rob() {
    let f = fixture();
    let base = CampaignConfig::new(Structure::Rob, FAULTS, RunMode::EndToEnd).with_seed(0xC3);
    assert_grid_identical(&f, &base);
}
