//! Shard determinism: any partition of a campaign's fault indices,
//! executed independently and merged, must reproduce the unsharded
//! campaign bit-for-bit — results and telemetry deterministic counters
//! alike. This is the property the distributed fabric (`avgi-grid`) is
//! built on.

use avgi_faultsim::telemetry::MetricsCollector;
use avgi_faultsim::{
    golden_for, run_campaign, CampaignConfig, CampaignError, MetricsSnapshot, RunMode, ShardRunner,
};
use avgi_muarch::{MuarchConfig, Structure};
use std::sync::Arc;

const FAULTS: usize = 36;

fn base_config() -> CampaignConfig {
    CampaignConfig::new(Structure::RegFile, FAULTS, RunMode::Instrumented).with_seed(0x5AAD)
}

#[test]
fn interleaved_shards_merge_bit_identical_across_splits() {
    let w = avgi_workloads::by_name("bitcount").unwrap();
    let cfg = MuarchConfig::big();
    let golden = golden_for(&w, &cfg);

    // Reference: one unsharded campaign with observed telemetry.
    let collector = Arc::new(MetricsCollector::new());
    let reference = run_campaign(
        &w,
        &cfg,
        &golden,
        &base_config().with_observer(collector.clone()),
    );
    let reference_counters = collector.snapshot().deterministic_counters_json();

    // Property sweep: several (shard count, thread count) splits, including
    // a shard count that does not divide the fault count.
    for (shards, threads) in [(1usize, 2usize), (2, 1), (3, 4), (5, 2)] {
        let mut ccfg = base_config();
        ccfg.threads = threads;
        let runner = ShardRunner::new(&w, &cfg, &golden, &ccfg);
        let mut merged_results = vec![None; FAULTS];
        let mut merged = MetricsSnapshot::empty();
        for shard in 0..shards {
            let collector = Arc::new(MetricsCollector::new());
            let results = runner
                .run_interleaved(shard, shards, Some(collector.clone()))
                .unwrap();
            for (i, r) in results {
                assert!(
                    merged_results[i].replace(r).is_none(),
                    "shard {shard}/{shards} produced index {i} twice"
                );
            }
            merged.merge(&collector.snapshot());
        }
        let merged_results: Vec<_> = merged_results
            .into_iter()
            .map(|r| r.expect("every index covered by exactly one shard"))
            .collect();
        assert_eq!(
            merged_results, reference.results,
            "split {shards}x{threads} diverged from the unsharded campaign"
        );
        assert_eq!(
            merged.deterministic_counters_json(),
            reference_counters,
            "split {shards}x{threads}: merged telemetry not bit-identical"
        );
    }
}

#[test]
fn explicit_index_batches_honor_order_and_bounds() {
    let w = avgi_workloads::by_name("bitcount").unwrap();
    let cfg = MuarchConfig::big();
    let golden = golden_for(&w, &cfg);
    let ccfg = base_config();
    let runner = ShardRunner::new(&w, &cfg, &golden, &ccfg);
    assert_eq!(runner.faults().len(), FAULTS);

    // Results come back zipped to the requested order, whatever it is.
    let indices = [7usize, 3, 7, 0];
    let out = runner.run_indices(&indices, None).unwrap();
    assert_eq!(out.len(), indices.len());
    for ((i, r), want) in out.iter().zip(indices) {
        assert_eq!(*i, want);
        assert_eq!(r.fault, runner.faults()[want]);
    }
    // Duplicate requests of the same index agree exactly.
    assert_eq!(out[0].1, out[2].1);

    match runner.run_indices(&[FAULTS], None) {
        Err(CampaignError::ShardIndexOutOfRange { index, faults }) => {
            assert_eq!(index, FAULTS);
            assert_eq!(faults, FAULTS);
        }
        other => panic!("expected ShardIndexOutOfRange, got {other:?}"),
    }
}
