//! Statistical-correctness harness for `faultsim::adaptive`.
//!
//! The adaptive driver is only worth having if three properties hold, and
//! each is proven empirically here rather than assumed:
//!
//! 1. **Unbiasedness** — the Horvitz–Thompson AVF/SDC estimates of a
//!    budget-capped adaptive campaign agree with a uniform campaign that
//!    spent 3× more runs (95 % Wilson intervals overlap, seed by seed, on
//!    three workloads), and the *mean* adaptive estimate over many seeds
//!    lands on a high-precision uniform ground truth.
//! 2. **Determinism** — the adaptive schedule (drawn faults, weights,
//!    estimates, posterior) is a pure function of the seed: invariant
//!    under thread count and under journal interrupt/resume, including
//!    kills in the middle of a batch.
//! 3. **Degenerate-posterior safety** — all-Masked posteriors, budgets
//!    smaller than one batch, and unit explore floors degrade to exact
//!    uniform sampling with unit weights instead of diverging, and
//!    statistically meaningless configurations fail up front.
//!
//! Everything here is deterministic: the campaign engine is bit-exact for
//! a given seed, so the "statistical" assertions are reproducible checks
//! of fixed numbers, not flaky coin flips.

use avgi_faultsim::{
    golden_for, run_adaptive, run_adaptive_journaled, run_campaign, weighted_estimate,
    wilson_interval, AdaptiveConfig, AdaptiveReport, CampaignConfig, CampaignError, RunMode,
    SamplingError,
};
use avgi_muarch::config::MuarchConfig;
use avgi_muarch::fault::Structure;
use avgi_muarch::trace::GoldenRun;
use avgi_workloads::Workload;
use std::sync::Arc;

/// Run-budget advantage the uniform baseline gets over the adaptive
/// campaign (the acceptance criterion's "≥3× fewer runs").
const BUDGET_RATIO: usize = 3;
/// Adaptive run budget for the head-to-head comparisons.
const ADAPTIVE_BUDGET: usize = 200;

fn setup(name: &str) -> (Workload, MuarchConfig, Arc<GoldenRun>) {
    let w = avgi_workloads::by_name(name).unwrap();
    let cfg = MuarchConfig::big();
    let golden = golden_for(&w, &cfg);
    (w, cfg, golden)
}

/// The adaptive configuration under test: 40-run batches (one uniform
/// warmup batch, then adaptation) with a 0.5 explore floor.
fn adaptive_cfg(structure: Structure, budget: usize, seed: u64) -> AdaptiveConfig {
    AdaptiveConfig::new(CampaignConfig::new(structure, budget, RunMode::EndToEnd).with_seed(seed))
        .with_batch_runs(40)
        .with_explore(0.5)
}

/// A point estimate with its Wilson confidence interval.
type PointEstimate = (f64, (f64, f64));

/// Uniform-campaign (AVF, SDC) point estimates with 95 % Wilson intervals.
fn uniform_estimates(
    w: &Workload,
    cfg: &MuarchConfig,
    golden: &Arc<GoldenRun>,
    structure: Structure,
    runs: usize,
    seed: u64,
) -> (PointEstimate, PointEstimate) {
    let ccfg = CampaignConfig::new(structure, runs, RunMode::EndToEnd).with_seed(seed);
    let result = run_campaign(w, cfg, golden, &ccfg);
    let weights = vec![1.0; result.results.len()];
    let est = weighted_estimate(&result.results, &weights, 0.95).unwrap();
    (
        (
            est.avf,
            wilson_interval(est.avf, runs as f64, 0.95).unwrap(),
        ),
        (
            est.sdc,
            wilson_interval(est.sdc, runs as f64, 0.95).unwrap(),
        ),
    )
}

fn overlaps(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 <= b.1 && b.0 <= a.1
}

/// The acceptance-criterion head-to-head: on three workloads, a 200-run
/// adaptive campaign must agree with a 600-run uniform campaign — the 95 %
/// AVF *and* SDC intervals overlap for every seed, at least one seed's AVF
/// point estimate falls inside the uniform interval outright, and the mean
/// over seeds stays within the (slightly widened) uniform interval.
#[test]
fn adaptive_matches_uniform_with_a_third_of_the_runs() {
    for name in ["bitcount", "crc32", "sha"] {
        let (w, cfg, golden) = setup(name);
        let uniform_runs = BUDGET_RATIO * ADAPTIVE_BUDGET;
        let ((u_avf, u_avf_ci), (u_sdc, u_sdc_ci)) =
            uniform_estimates(&w, &cfg, &golden, Structure::RegFile, uniform_runs, 1);

        let mut inside = 0usize;
        let mut avf_sum = 0.0;
        for seed in [1u64, 2, 3] {
            let rep = run_adaptive(
                &w,
                &cfg,
                &golden,
                &adaptive_cfg(Structure::RegFile, ADAPTIVE_BUDGET, seed),
            )
            .unwrap();
            assert_eq!(
                rep.runs_used() * BUDGET_RATIO,
                uniform_runs,
                "the comparison must honour the 3x budget gap"
            );
            let est = &rep.estimate;
            assert!(
                overlaps(est.avf_interval, u_avf_ci),
                "{name} seed {seed}: adaptive AVF {:.3} {:?} disagrees with \
                 uniform {u_avf:.3} {u_avf_ci:?}",
                est.avf,
                est.avf_interval,
            );
            let sdc_ci = wilson_interval(est.sdc, est.n_eff.max(1.0), 0.95).unwrap();
            assert!(
                overlaps(sdc_ci, u_sdc_ci),
                "{name} seed {seed}: adaptive SDC {:.3} {sdc_ci:?} disagrees \
                 with uniform {u_sdc:.3} {u_sdc_ci:?}",
                est.sdc,
            );
            // The reweighting must actually disperse the weights (the
            // campaign adapted) yet keep a usable effective sample size.
            assert!(est.n_eff < rep.runs_used() as f64);
            assert!(est.n_eff > rep.runs_used() as f64 / 4.0);
            if est.avf >= u_avf_ci.0 && est.avf <= u_avf_ci.1 {
                inside += 1;
            }
            avf_sum += est.avf;
        }
        assert!(
            inside >= 1,
            "{name}: no adaptive seed landed inside the uniform AVF interval"
        );
        let mean = avf_sum / 3.0;
        assert!(
            mean >= u_avf_ci.0 - 0.01 && mean <= u_avf_ci.1 + 0.01,
            "{name}: mean adaptive AVF {mean:.4} strays from uniform interval {u_avf_ci:?}"
        );
    }
}

/// The sharper unbiasedness claim: averaged over ten seeds, the adaptive
/// estimator reproduces a 2000-run uniform ground truth to about a run's
/// worth of resolution. A reweighting bug (wrong likelihood ratio, wrong
/// fallback, weight applied to the wrong draw) moves this mean by far more
/// than the tolerance.
#[test]
fn estimator_is_unbiased_in_expectation() {
    let (w, cfg, golden) = setup("bitcount");
    let ((truth, _), _) = uniform_estimates(&w, &cfg, &golden, Structure::RegFile, 2000, 99);
    let mut sum = 0.0;
    for seed in 0..10u64 {
        let rep = run_adaptive(
            &w,
            &cfg,
            &golden,
            &adaptive_cfg(Structure::RegFile, ADAPTIVE_BUDGET, seed),
        )
        .unwrap();
        sum += rep.estimate.avf;
    }
    let mean = sum / 10.0;
    assert!(
        (mean - truth).abs() <= 0.012,
        "mean adaptive AVF {mean:.4} vs uniform ground truth {truth:.4}"
    );
}

fn assert_reports_identical(a: &AdaptiveReport, b: &AdaptiveReport, what: &str) {
    assert_eq!(a.campaign.results, b.campaign.results, "{what}: results");
    assert_eq!(a.weights, b.weights, "{what}: weights");
    assert_eq!(a.batches, b.batches, "{what}: batches");
    assert_eq!(a.stopped_early, b.stopped_early, "{what}: stop point");
    assert_eq!(a.estimate, b.estimate, "{what}: estimate");
    assert_eq!(a.grid, b.grid, "{what}: posterior grid");
    assert_eq!(a.grid.to_json(), b.grid.to_json(), "{what}: posterior JSON");
}

/// The proposal for batch `k` reads the posterior only at the batch
/// boundary, and the posterior tallies are additive — so the entire
/// adaptive schedule must be byte-identical across worker counts.
#[test]
fn adaptive_schedule_is_thread_count_invariant() {
    let (w, cfg, golden) = setup("crc32");
    let mut reports = Vec::new();
    for threads in [1usize, 4] {
        let mut acfg = adaptive_cfg(Structure::RegFile, 120, 7);
        acfg.base.threads = threads;
        reports.push(run_adaptive(&w, &cfg, &golden, &acfg).unwrap());
    }
    assert_reports_identical(&reports[0], &reports[1], "1 vs 4 threads");
}

/// Satellite: journal resume mid-adaptive-phase. A campaign killed after
/// batch N — or in the *middle* of a batch — must resume into a final
/// report and posterior state bit-identical to an uninterrupted run's.
#[test]
fn resume_mid_adaptation_is_bit_identical() {
    let (w, cfg, golden) = setup("crc32");
    let mut acfg = adaptive_cfg(Structure::RegFile, 120, 21);
    acfg.base.threads = 2;

    // Ground truth: the same campaign without any journal at all.
    let reference = run_adaptive(&w, &cfg, &golden, &acfg).unwrap();

    let dir = std::env::temp_dir();
    let full = dir.join(format!("avgi-adaptive-full-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&full);
    let journaled = run_adaptive_journaled(&w, &cfg, &golden, &acfg, &full).unwrap();
    assert_reports_identical(&reference, &journaled, "journaled vs plain");

    // Kill-and-resume: truncate the finished journal to its header plus the
    // first `keep` records and resume from the torn copy. 40 = exactly
    // after the warmup batch; 70 = mid-batch-2 (30 of its 40 runs done).
    let bytes = std::fs::read_to_string(&full).unwrap();
    let lines: Vec<&str> = bytes.split_inclusive('\n').collect();
    assert!(lines.len() > 1 + 120 - 40, "journal shorter than expected");
    for keep in [40usize, 70] {
        let torn = dir.join(format!(
            "avgi-adaptive-torn-{}-{}.jsonl",
            keep,
            std::process::id()
        ));
        std::fs::write(&torn, lines[..1 + keep].concat()).unwrap();
        let resumed = run_adaptive_journaled(&w, &cfg, &golden, &acfg, &torn).unwrap();
        assert_reports_identical(&reference, &resumed, "resumed after kill");
        std::fs::remove_file(&torn).unwrap();
    }

    // The adaptive knobs are part of the schedule's identity even though
    // they are not in the journal header: resuming with a different explore
    // floor regenerates different post-warmup faults, and the per-record
    // fault cross-check refuses the journal instead of mixing estimators.
    let mut tilted = acfg.clone();
    tilted.explore = 0.25;
    match run_adaptive_journaled(&w, &cfg, &golden, &tilted, &full) {
        Err(CampaignError::JournalMismatch { field, .. }) => assert_eq!(field, "fault"),
        other => panic!("changed adaptive knobs must be rejected, got {other:?}"),
    }
    std::fs::remove_file(&full).unwrap();
}

/// Degenerate posteriors must degrade to plain uniform sampling, never to
/// unbounded weights or starved cells:
/// * a structure whose faults all mask (L2 data on bitcount) keeps the
///   proposal uniform for the whole campaign — every weight stays 1;
/// * a budget smaller than one batch never leaves warmup;
/// * a unit explore floor disables adaptation even with a hot posterior.
#[test]
fn degenerate_posteriors_fall_back_to_uniform() {
    let (w, cfg, golden) = setup("bitcount");

    let all_masked =
        run_adaptive(&w, &cfg, &golden, &adaptive_cfg(Structure::L2Data, 120, 5)).unwrap();
    assert_eq!(all_masked.grid.total_affected(), 0, "premise: all Masked");
    assert!(all_masked.weights.iter().all(|&x| x == 1.0));
    assert_eq!(all_masked.estimate.n_eff, 120.0);
    assert_eq!(all_masked.estimate.avf, 0.0);
    assert_eq!(all_masked.batches, 3);

    let tiny = run_adaptive(&w, &cfg, &golden, &adaptive_cfg(Structure::RegFile, 10, 5)).unwrap();
    assert_eq!(tiny.runs_used(), 10);
    assert_eq!(tiny.batches, 1);
    assert!(tiny.weights.iter().all(|&x| x == 1.0), "warmup is uniform");

    let no_tilt = run_adaptive(
        &w,
        &cfg,
        &golden,
        &adaptive_cfg(Structure::RegFile, 120, 5).with_explore(1.0),
    )
    .unwrap();
    assert!(
        no_tilt.grid.total_affected() > 0,
        "premise: posterior is hot"
    );
    assert!(no_tilt.weights.iter().all(|&x| x == 1.0));
    assert_eq!(no_tilt.estimate.n_eff, 120.0);
}

/// CI-driven early stopping: the campaign stops at the first batch
/// boundary past warmup whose Wilson half-width meets the target, leaving
/// the rest of the budget unspent and reporting the saving.
#[test]
fn early_stopping_respects_the_ci_target() {
    let (w, cfg, golden) = setup("crc32");
    let rep = run_adaptive(
        &w,
        &cfg,
        &golden,
        &adaptive_cfg(Structure::RegFile, 600, 1).with_ci_target(0.05),
    )
    .unwrap();
    assert!(rep.stopped_early);
    assert!(rep.runs_used() < 600, "budget must not be exhausted");
    assert!(rep.runs_used() > 40, "stopping before warmup ends is bogus");
    assert!(rep.estimate.half_width() <= 0.05);
    assert!(rep.runs_saved_pct() > 0.0);
    let expected = 100.0 * (600 - rep.runs_used()) as f64 / 600.0;
    assert!((rep.runs_saved_pct() - expected).abs() < 1e-12);
    // The stop is a batch boundary, not an arbitrary run index.
    assert_eq!(rep.runs_used() % 40, 0);
}

/// Statistically meaningless configurations fail before any run executes,
/// with the distinct error satellite 1 introduced — not a clamp, not a
/// panic deep in the estimator.
#[test]
fn invalid_statistical_configs_error_before_any_run() {
    let (w, cfg, golden) = setup("bitcount");
    let base = |budget| adaptive_cfg(Structure::RegFile, budget, 1);

    for bad in [0.0, 1.0, 1.5, -0.3, f64::NAN] {
        match run_adaptive(&w, &cfg, &golden, &base(40).with_confidence(bad)) {
            Err(CampaignError::Sampling(SamplingError::InvalidConfidence)) => {}
            other => panic!("confidence {bad} must be rejected, got {other:?}"),
        }
    }
    for bad in [0.0, -0.5, f64::NAN, f64::INFINITY] {
        match run_adaptive(&w, &cfg, &golden, &base(40).with_ci_target(bad)) {
            Err(CampaignError::Sampling(SamplingError::InvalidMargin)) => {}
            other => panic!("ci target {bad} must be rejected, got {other:?}"),
        }
    }
    match run_adaptive(&w, &cfg, &golden, &base(0)) {
        Err(CampaignError::Sampling(SamplingError::ZeroSamples)) => {}
        other => panic!("zero budget must be rejected, got {other:?}"),
    }
}
