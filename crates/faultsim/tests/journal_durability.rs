//! Journal corruption and durability-policy coverage beyond the torn tail.
//!
//! The journal's promise (`DESIGN.md` §12): any corruption — a torn tail,
//! a flipped bit mid-file, a doctored header — is *detected*, never
//! silently resumed from, and recovery re-executes exactly the dropped
//! records so a resumed campaign stays bit-identical to an uninterrupted
//! one.

use avgi_faultsim::journal::{crc32, CampaignKey, JOURNAL_VERSION};
use avgi_faultsim::{
    golden_for, run_campaign, run_campaign_journaled, CampaignConfig, CampaignError,
    DurabilityPolicy, Journal, RunMode,
};
use avgi_muarch::Structure;
use std::path::{Path, PathBuf};

const FAULTS: usize = 24;

fn ccfg() -> CampaignConfig {
    CampaignConfig::new(Structure::RegFile, FAULTS, RunMode::EndToEnd).with_seed(0x10D1)
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("avgi-journal-{tag}-{}.jsonl", std::process::id()))
}

struct Fixture {
    w: avgi_workloads::Workload,
    cfg: avgi_muarch::config::MuarchConfig,
    golden: std::sync::Arc<avgi_muarch::trace::GoldenRun>,
}

fn fixture() -> Fixture {
    let w = avgi_workloads::by_name("bitcount").unwrap();
    let cfg = avgi_muarch::config::MuarchConfig::big();
    let golden = golden_for(&w, &cfg);
    Fixture { w, cfg, golden }
}

/// Runs the campaign journaled at `path` and returns the result.
fn run_journaled(f: &Fixture, path: &Path) -> avgi_faultsim::CampaignResult {
    run_campaign_journaled(&f.w, &f.cfg, &f.golden, &ccfg(), path).unwrap()
}

#[test]
fn bitflipped_midfile_record_is_detected_and_resume_is_bit_identical() {
    let f = fixture();
    let path = tmp_path("bitflip");
    let _ = std::fs::remove_file(&path);
    let reference = run_campaign(&f.w, &f.cfg, &f.golden, &ccfg());
    let first = run_journaled(&f, &path);
    assert_eq!(first.results, reference.results);

    // Flip one bit in the 6th record (deep mid-file, nowhere near the
    // tail). The line still parses as a line; only the CRC knows.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.split_inclusive('\n').collect();
    assert_eq!(lines.len(), 1 + FAULTS);
    let offset: usize = lines[..6].iter().map(|l| l.len()).sum::<usize>() + 12;
    let mut bytes = text.into_bytes();
    bytes[offset] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    // Resume: records 1–5 restore, the flipped record and everything after
    // it re-execute, and the merged result is bit-identical.
    let resumed = run_journaled(&f, &path);
    assert_eq!(resumed.results, reference.results);

    // The journal self-healed: fully valid again, all records sealed.
    let healed = std::fs::read_to_string(&path).unwrap();
    assert_eq!(healed.split_inclusive('\n').count(), 1 + FAULTS);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn doctored_header_with_valid_crc_is_rejected_as_mismatch() {
    let f = fixture();
    let path = tmp_path("doctored");
    let _ = std::fs::remove_file(&path);
    run_journaled(&f, &path);

    // An adversarial (or fat-fingered) edit that *recomputes* the CRC: the
    // checksum passes, so the campaign-key cross-check must catch it.
    let text = std::fs::read_to_string(&path).unwrap();
    let (header, rest) = text.split_once('\n').unwrap();
    let (json, _crc) = header.rsplit_once(' ').unwrap();
    let doctored = json.replace("\"seed\":4305", "\"seed\":4306");
    assert_ne!(doctored, json, "the seed literal must be present to doctor");
    let resealed = format!("{doctored} {:08x}\n{rest}", crc32(doctored.as_bytes()));
    std::fs::write(&path, resealed).unwrap();
    match run_campaign_journaled(&f.w, &f.cfg, &f.golden, &ccfg(), &path) {
        Err(CampaignError::JournalMismatch { field: "seed", .. }) => {}
        other => panic!("expected seed mismatch, got {other:?}"),
    }

    // The same edit without resealing fails the checksum even earlier.
    let unsealed = text.replace("\"seed\":4305", "\"seed\":4306");
    std::fs::write(&path, unsealed).unwrap();
    match run_campaign_journaled(&f.w, &f.cfg, &f.golden, &ccfg(), &path) {
        Err(CampaignError::JournalHeader(msg)) => {
            assert!(msg.contains("checksum"), "unexpected header error: {msg}")
        }
        other => panic!("expected header checksum failure, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fsync_policy_journals_are_interchangeable_with_flush_journals() {
    let f = fixture();
    let path = tmp_path("fsync");
    let _ = std::fs::remove_file(&path);
    let key = CampaignKey::new(f.w.name, &f.cfg, f.golden.cycles, &ccfg());

    // Write the first half of a campaign under FsyncEveryN…
    let reference = run_campaign(&f.w, &f.cfg, &f.golden, &ccfg());
    {
        let (mut journal, done) =
            Journal::open_with(&path, &key, DurabilityPolicy::FsyncEveryN(4)).unwrap();
        assert!(done.is_empty());
        for (i, r) in reference.results.iter().take(FAULTS / 2).enumerate() {
            journal.append(i, r).unwrap();
        }
        journal.sync().unwrap();
    }
    // …and reopen under plain Flush: same format, half the records restore,
    // and the journaled completion matches the reference bit-for-bit.
    let (journal, done) = Journal::open_with(&path, &key, DurabilityPolicy::Flush).unwrap();
    assert_eq!(done.len(), FAULTS / 2);
    drop(journal);
    let resumed = run_journaled(&f, &path);
    assert_eq!(resumed.results, reference.results);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn header_creation_is_atomic_and_leaves_no_temp_file() {
    let f = fixture();
    let path = tmp_path("atomic");
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&tmp);
    let key = CampaignKey::new(f.w.name, &f.cfg, f.golden.cycles, &ccfg());

    let (journal, done) = Journal::open(&path, &key).unwrap();
    assert!(done.is_empty());
    assert!(path.exists(), "journal must exist after open");
    assert!(!tmp.exists(), "temp file must be renamed away");
    drop(journal);

    // A zero-length file (a crash between create and rename under the old
    // non-atomic scheme) is treated as fresh, not as corruption.
    std::fs::write(&path, b"").unwrap();
    let (_, done) = Journal::open(&path, &key).unwrap();
    assert!(done.is_empty());
    assert!(!tmp.exists());

    // Version drift is refused outright.
    let text = std::fs::read_to_string(&path).unwrap();
    let bumped = text.replace(
        &format!("\"version\":{JOURNAL_VERSION}"),
        &format!("\"version\":{}", JOURNAL_VERSION + 1),
    );
    assert_ne!(bumped, text);
    let (json, _) = bumped.trim_end().rsplit_once(' ').unwrap();
    std::fs::write(&path, format!("{json} {:08x}\n", crc32(json.as_bytes()))).unwrap();
    match Journal::open(&path, &key) {
        Err(CampaignError::JournalMismatch {
            field: "version", ..
        }) => {}
        other => panic!("expected version mismatch, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}
