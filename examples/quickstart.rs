//! Quickstart: assess the register-file vulnerability of one workload with
//! the full AVGI methodology, against the exhaustive-SFI ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use avgi_repro::core::pipeline::{assess, exhaustive, AvgiOptions};
use avgi_repro::core::weights::learn_weights;
use avgi_repro::faultsim::golden_for;
use avgi_repro::muarch::{MuarchConfig, Structure};

fn main() {
    let cfg = MuarchConfig::big();
    let structure = Structure::RegFile;
    let faults = 300;
    let workloads = avgi_repro::workloads::all();

    // 1. Learn per-IMM weights from exhaustive campaigns on every workload
    //    except the one we want to assess (leave-one-out).
    let target = workloads.last().expect("workloads exist");
    println!(
        "learning IMM weights for {structure} (training: {} workloads)...",
        workloads.len() - 1
    );
    let analyses: Vec<_> = workloads
        .iter()
        .filter(|w| w.name != target.name)
        .map(|w| {
            let golden = golden_for(w, &cfg);
            exhaustive(w, &cfg, &golden, structure, faults, 1).analysis
        })
        .collect();
    let weights = learn_weights(&analyses, None);

    // 2. Assess the held-out workload with AVGI (first-deviation stop + ERT
    //    window + ESC estimation)...
    let golden = golden_for(target, &cfg);
    let opts = AvgiOptions {
        faults,
        seed: 2,
        ..Default::default()
    };
    let avgi = assess(target, &cfg, &golden, &weights, &opts);

    // 3. ...and compare against the exhaustive ground truth.
    let real = exhaustive(target, &cfg, &golden, structure, faults, 2);

    println!("\nworkload `{}`, structure {structure}:", target.name);
    println!(
        "  exhaustive SFI : {}  ({} Mcycles simulated)",
        real.effect,
        real.cost_cycles / 1_000_000
    );
    println!(
        "  AVGI           : {}  ({} Mcycles simulated)",
        avgi.predicted,
        avgi.cost_cycles / 1_000_000
    );
    println!(
        "  max class diff : {:.2}%   speedup: {:.1}x",
        real.effect.max_abs_diff(avgi.predicted) * 100.0,
        real.cost_cycles as f64 / avgi.cost_cycles.max(1) as f64,
    );
}
