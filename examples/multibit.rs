//! Multi-bit fault study (§VII.A): compare final-effect distributions of
//! single-bit faults against spatially adjacent 2- and 4-bit bursts in the
//! L1 data cache.
//!
//! ```sh
//! cargo run --release --example multibit
//! ```

use avgi_repro::core::{EffectDistribution, JointAnalysis};
use avgi_repro::faultsim::{golden_for, run_campaign, CampaignConfig, RunMode};
use avgi_repro::muarch::{MuarchConfig, Structure};

fn main() {
    let cfg = MuarchConfig::big();
    let w = avgi_repro::workloads::by_name("blowfish").expect("known workload");
    let golden = golden_for(&w, &cfg);
    let faults = 300;

    println!(
        "multi-bit bursts in {} on `{}` ({faults} injections each)\n",
        Structure::L1DData.label(),
        w.name
    );
    for width in [1u32, 2, 4] {
        let c = run_campaign(
            &w,
            &cfg,
            &golden,
            &CampaignConfig::new(Structure::L1DData, faults, RunMode::Instrumented)
                .with_burst(width),
        );
        for msg in &c.warnings {
            eprintln!("[health] {msg}");
        }
        if c.aborted_count() > 0 || c.wall_expired_count() > 0 {
            eprintln!(
                "[health] burst width {width}: {} aborted ({:.2}%), {} wall-clock expired",
                c.aborted_count(),
                c.abort_rate() * 100.0,
                c.wall_expired_count()
            );
        }
        let a = JointAnalysis::from_campaign(&c);
        let eff = EffectDistribution::from_array(a.effect_distribution());
        println!(
            "burst width {width}: {eff}   (benign {:.1}%)",
            100.0 * a.benign_count() as f64 / a.total as f64
        );
    }
    println!(
        "\nwider bursts raise corruption probability but manifest through the same IMM\n\
         classes, so AVGI's classification applies unchanged (paper §VII.A)."
    );
}
