//! FIT-rate reporting: measure per-structure AVFs with exhaustive SFI on a
//! single workload and convert them to Failures-in-Time, including the
//! whole-chip consolidation (the paper's Fig. 11 metric).
//!
//! ```sh
//! cargo run --release --example fit_rates
//! ```

use avgi_repro::core::fit::{chip_fit, structure_fit, RAW_FIT_PER_BIT};
use avgi_repro::core::pipeline::exhaustive;
use avgi_repro::faultsim::golden_for;
use avgi_repro::muarch::{MuarchConfig, Structure};

fn main() {
    let cfg = MuarchConfig::big();
    let w = avgi_repro::workloads::by_name("dijkstra").expect("known workload");
    let golden = golden_for(&w, &cfg);
    let faults = 250;

    println!(
        "FIT rates for `{}` on {} (raw rate {RAW_FIT_PER_BIT} FIT/bit)\n",
        w.name, cfg.name
    );
    println!(
        "{:>11} {:>10} {:>8} {:>10}",
        "structure", "bits", "AVF", "FIT"
    );
    let mut avfs = Vec::new();
    for &s in Structure::all() {
        let avf = exhaustive(&w, &cfg, &golden, s, faults, 7).effect.avf();
        avfs.push((s, avf));
        println!(
            "{:>11} {:>10} {:>7.2}% {:>10.4}",
            s.label(),
            s.bit_count(&cfg),
            avf * 100.0,
            structure_fit(s, &cfg, avf)
        );
    }
    println!("\nwhole chip: {:.4} FIT", chip_fit(&cfg, avfs));
}
