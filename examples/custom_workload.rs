//! Bring-your-own-workload: write a program against the AvgIsa assembler,
//! run it on the simulator, and put it through a mini fault-injection
//! campaign — everything a user needs to study their own kernel.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use avgi_repro::core::classify::classify_injection;
use avgi_repro::faultsim::{run_one, RunMode};
use avgi_repro::isa::asm::Assembler;
use avgi_repro::isa::reg::{A0, A1, T0, T1, T2, ZERO};
use avgi_repro::muarch::mem::{DATA_BASE, OUTPUT_BASE};
use avgi_repro::muarch::pipeline::capture_golden;
use avgi_repro::muarch::program::Program;
use avgi_repro::muarch::{Fault, FaultSite, MuarchConfig, Structure};
use avgi_repro::workloads::Workload;

fn main() {
    // A Fibonacci kernel: writes fib(0..32) to the output region.
    let mut a = Assembler::new(0);
    a.li32(A0, OUTPUT_BASE);
    a.li32(T0, 0); // fib(i)
    a.li32(T1, 1); // fib(i+1)
    a.li32(A1, 32); // count
    a.label("loop");
    a.sw(A0, T0, 0);
    a.add(T2, T0, T1);
    a.mv(T0, T1);
    a.mv(T1, T2);
    a.addi(A0, A0, 4);
    a.addi(A1, A1, -1);
    a.bne(A1, ZERO, "loop");
    a.halt();
    let program = Program::new("fib", a.assemble().expect("assembles"), 32 * 4)
        .with_data(DATA_BASE, vec![0; 4]);

    let cfg = MuarchConfig::big();
    let golden = capture_golden(&program, &cfg, 1_000_000);
    let fib8 = u32::from_le_bytes(golden.output[32..36].try_into().expect("word"));
    println!("fault-free run: {} cycles, fib(8) = {fib8}", golden.cycles);
    assert_eq!(fib8, 21);

    // Wrap it as a Workload and inject a few register-file faults.
    let w = Workload {
        name: "fib",
        suite: avgi_repro::workloads::Suite::MiBench,
        expected: golden.output.clone(),
        program,
    };
    println!("\ninjecting register-file faults:");
    for (bit, cycle) in [
        (24 * 32 + 1, golden.cycles / 4),
        (95 * 32 + 9, 10),
        (26 * 32 + 3, golden.cycles / 2),
    ] {
        let fault = Fault {
            site: FaultSite {
                structure: Structure::RegFile,
                bit,
            },
            cycle,
        };
        let r = run_one(&w, &cfg, &golden, fault, RunMode::Instrumented, 1);
        println!(
            "  {fault}: {} -> outcome {:?}",
            classify_injection(&r),
            r.outcome
        );
    }
}
