//! Watching a campaign: attach the telemetry layer to a fault-injection
//! campaign and get live progress lines, an IMM class tally, and latency
//! histograms — without touching the campaign engine itself.
//!
//! ```sh
//! cargo run --release --example watch_campaign
//! ```

use avgi_repro::core::ert::default_ert_window;
use avgi_repro::core::{imm_collector, TelemetrySummary};
use avgi_repro::faultsim::telemetry::ProgressObserver;
use avgi_repro::faultsim::{golden_for, CampaignConfig, RunMode};
use avgi_repro::muarch::{MuarchConfig, Structure};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let cfg = MuarchConfig::big();
    let w = avgi_repro::workloads::by_name("qsort").unwrap();
    let golden = golden_for(&w, &cfg);

    // An IMM-classifying collector wrapped in a progress emitter. The
    // observer prints `[progress] ...` lines to stderr at most every 200 ms
    // (plus one forced line when the campaign ends), so short campaigns
    // still show at least one snapshot.
    let progress = Arc::new(ProgressObserver::stderr(
        Arc::new(imm_collector()),
        Duration::from_millis(200),
    ));

    let structure = Structure::RegFile;
    let window = default_ert_window(structure, golden.cycles);
    let ccfg = CampaignConfig::new(
        structure,
        400,
        RunMode::FirstDeviation {
            ert_window: Some(window),
        },
    )
    .with_checkpoints(8)
    .with_observer(progress.clone());

    let result = avgi_repro::faultsim::run_campaign(&w, &cfg, &golden, &ccfg);

    // The collector's final snapshot is the machine-readable artifact; the
    // TelemetrySummary wrapper renders it for humans.
    let snap = progress.collector().snapshot();
    assert_eq!(snap.completed, result.len() as u64);
    print!("{}", TelemetrySummary(&snap));
    println!("\nmetrics.json payload:\n{}", snap.to_json());
}
