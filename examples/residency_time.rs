//! Effective-residency-time exploration: measure how quickly faults in
//! each structure manifest (first commit-trace deviation after injection)
//! and derive coverage-based ERT stop windows — the paper's §V.A analysis.
//!
//! ```sh
//! cargo run --release --example residency_time
//! ```

use avgi_repro::core::ert::{default_ert_window, ert_window_for_coverage};
use avgi_repro::core::JointAnalysis;
use avgi_repro::faultsim::{golden_for, run_campaign, CampaignConfig, RunMode};
use avgi_repro::muarch::{MuarchConfig, Structure};

fn main() {
    let cfg = MuarchConfig::big();
    let faults = 200;
    let structures = [
        Structure::RegFile,
        Structure::Dtlb,
        Structure::L1IData,
        Structure::L1DData,
    ];
    println!(
        "manifestation latency and ERT windows ({} faults x {} workloads per structure)\n",
        faults,
        avgi_repro::workloads::all().len()
    );
    println!(
        "{:>11} {:>8} {:>9} {:>9} {:>9} {:>12} {:>12}",
        "structure", "manif.", "p50", "p90", "max", "w@95%cov", "default"
    );
    for s in structures {
        let mut analyses: Vec<JointAnalysis> = Vec::new();
        let mut golden_cycles = 0;
        for w in avgi_repro::workloads::all() {
            let golden = golden_for(&w, &cfg);
            golden_cycles = golden.cycles;
            let c = run_campaign(
                &w,
                &cfg,
                &golden,
                &CampaignConfig::new(s, faults, RunMode::Instrumented),
            );
            for msg in &c.warnings {
                eprintln!("[health] {} / {}: {msg}", s.label(), w.name);
            }
            if c.aborted_count() > 0 || c.wall_expired_count() > 0 {
                eprintln!(
                    "[health] {} / {}: {} aborted ({:.2}%), {} wall-clock expired",
                    s.label(),
                    w.name,
                    c.aborted_count(),
                    c.abort_rate() * 100.0,
                    c.wall_expired_count()
                );
            }
            analyses.push(JointAnalysis::from_campaign(&c));
        }
        let mut lats: Vec<u64> = analyses
            .iter()
            .flat_map(|a| a.manifestation_latencies.iter().copied())
            .collect();
        lats.sort_unstable();
        let q = |p: f64| {
            lats.get(((lats.len().max(1) - 1) as f64 * p) as usize)
                .copied()
                .unwrap_or(0)
        };
        println!(
            "{:>11} {:>8} {:>9} {:>9} {:>9} {:>12} {:>12}",
            s.label(),
            lats.len(),
            q(0.5),
            q(0.9),
            lats.last().copied().unwrap_or(0),
            ert_window_for_coverage(&analyses, 0.95, 10).unwrap_or(0),
            default_ert_window(s, golden_cycles),
        );
    }
    println!(
        "\nmost manifestations happen shortly after injection; the long tail comes from\n\
         values parked until a late program phase — the distribution behind insight 3."
    );
}
