//! # avgi-repro — umbrella crate of the AVGI reproduction
//!
//! Re-exports the five member crates under stable module names so the
//! examples and integration tests read naturally:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`isa`] | `avgi-isa` | the AvgIsa instruction set + assembler |
//! | [`muarch`] | `avgi-muarch` | the out-of-order microarchitecture simulator |
//! | [`workloads`] | `avgi-workloads` | the 14 benchmark programs |
//! | [`faultsim`] | `avgi-faultsim` | statistical fault-injection campaigns |
//! | [`core`] | `avgi-core` | the AVGI methodology (IMMs, weights, ESC, ERT, FIT) |
//!
//! See `README.md` for the quickstart and `DESIGN.md` for the architecture.
//!
//! ```no_run
//! use avgi_repro::core::pipeline::{assess, AvgiOptions};
//! use avgi_repro::core::weights::learn_weights;
//! use avgi_repro::faultsim::golden_for;
//! use avgi_repro::muarch::{MuarchConfig, Structure};
//!
//! let cfg = MuarchConfig::big();
//! let w = avgi_repro::workloads::by_name("dijkstra").unwrap();
//! let golden = golden_for(&w, &cfg);
//! let train = avgi_repro::core::pipeline::exhaustive(
//!     &w, &cfg, &golden, Structure::RegFile, 200, 1,
//! );
//! let weights = learn_weights(&[train.analysis], None);
//! let report = assess(&w, &cfg, &golden, &weights, &AvgiOptions::default());
//! println!("{}", report.predicted);
//! ```

pub use avgi_core as core;
pub use avgi_faultsim as faultsim;
pub use avgi_isa as isa;
pub use avgi_muarch as muarch;
pub use avgi_workloads as workloads;
